package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Fusion errors.
var (
	// ErrFusionTooSmall reports a candidate subgraph with fewer than two
	// members.
	ErrFusionTooSmall = errors.New("fusion: subgraph needs at least two operators")
	// ErrFusionFrontEnd reports a subgraph without a unique front-end
	// vertex (Section 3.3 constraint 1).
	ErrFusionFrontEnd = errors.New("fusion: subgraph must have a single front-end vertex")
	// ErrFusionCycle reports that replacing the subgraph would make the
	// topology cyclic (Section 3.3 constraint 2).
	ErrFusionCycle = errors.New("fusion: replacing the subgraph would create a cycle")
	// ErrFusionSource reports an attempt to include the source.
	ErrFusionSource = errors.New("fusion: subgraph cannot contain the source")
	// ErrFusionDisconnected reports members unreachable from the
	// front-end within the subgraph.
	ErrFusionDisconnected = errors.New("fusion: member unreachable from the front-end within the subgraph")
)

// FusionReport describes the predicted effect of fusing a subgraph.
type FusionReport struct {
	// FrontEnd is the subgraph's unique entry vertex in the original
	// topology.
	FrontEnd OpID
	// Members lists the fused vertices (original IDs).
	Members []OpID
	// ServiceTime is the meta-operator's predicted mean service time per
	// input item (Algorithm 3).
	ServiceTime float64
	// OutputSelectivity is the expected number of items leaving the
	// subgraph per item entering it; 1 for unit-selectivity subgraphs.
	OutputSelectivity float64
	// Before and After are the steady-state analyses of the original and
	// fused topologies.
	Before, After *Analysis
	// FusedID is the meta-operator's ID in the fused topology.
	FusedID OpID
	// SurvivorIDs maps each non-member operator's ID in the original
	// topology to its ID in the fused topology; runtimes executing the
	// meta-operator use it to translate exit destinations (Algorithm 4).
	SurvivorIDs map[OpID]OpID
	// IntroducesBottleneck reports whether the meta-operator saturates in
	// the fused topology, i.e. the fusion would impair throughput. The
	// tool surfaces this as the paper's "alert".
	IntroducesBottleneck bool
	// ThroughputBefore and ThroughputAfter are the predicted topology
	// throughputs (source departure rates).
	ThroughputBefore, ThroughputAfter float64
}

// Degradation returns the relative throughput loss predicted for the
// fusion; 0 when the fusion is performance-neutral or better.
func (r *FusionReport) Degradation() float64 {
	if r.ThroughputBefore <= 0 || r.ThroughputAfter >= r.ThroughputBefore {
		return 0
	}
	return 1 - r.ThroughputAfter/r.ThroughputBefore
}

// memberSet is a small helper for subgraph membership tests.
type memberSet map[OpID]bool

func newMemberSet(members []OpID) memberSet {
	s := make(memberSet, len(members))
	for _, m := range members {
		s[m] = true
	}
	return s
}

// ValidateSubgraph checks the Section 3.3 constraints on a fusion
// candidate and returns its unique front-end vertex:
//
//   - at least two members, none of which is the source;
//   - exactly one member (the front-end) receives edges from outside the
//     subgraph; every other member's inputs all originate inside;
//   - every member is reachable from the front-end within the subgraph;
//   - contracting the subgraph to a single vertex keeps the graph acyclic.
func ValidateSubgraph(t *Topology, members []OpID) (OpID, error) {
	if len(members) < 2 {
		return -1, ErrFusionTooSmall
	}
	set := newMemberSet(members)
	if len(set) != len(members) {
		return -1, fmt.Errorf("fusion: duplicate members")
	}
	src := t.Source()
	front := OpID(-1)
	for _, m := range members {
		if !t.valid(m) {
			return -1, fmt.Errorf("fusion: invalid operator id %d", m)
		}
		if m == src {
			return -1, ErrFusionSource
		}
		hasOutside := false
		for _, e := range t.in[m] {
			if !set[e.From] {
				hasOutside = true
			}
		}
		if hasOutside {
			if front >= 0 {
				return -1, fmt.Errorf("%w: both %q and %q receive external input",
					ErrFusionFrontEnd, t.ops[front].Name, t.ops[m].Name)
			}
			front = m
		}
	}
	if front < 0 {
		return -1, fmt.Errorf("%w: no member receives external input", ErrFusionFrontEnd)
	}
	// Reachability inside the subgraph.
	reached := memberSet{front: true}
	stack := []OpID{front}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.out[v] {
			if set[e.To] && !reached[e.To] {
				reached[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	for _, m := range members {
		if !reached[m] {
			return -1, fmt.Errorf("%w: %q", ErrFusionDisconnected, t.ops[m].Name)
		}
	}
	// Acyclicity after contraction: a cycle appears iff a path leaves the
	// subgraph and re-enters it. Since the only entry is the front-end, it
	// suffices to check that no exit target reaches a vertex with an edge
	// into the front-end.
	if contractionCreatesCycle(t, set, front) {
		return -1, ErrFusionCycle
	}
	return front, nil
}

func contractionCreatesCycle(t *Topology, set memberSet, front OpID) bool {
	// BFS from every exit target through non-member vertices; if we can
	// reach a vertex that feeds the front-end (or any member, which the
	// front-end uniqueness already precludes except for front itself),
	// contraction creates a cycle.
	feeds := make(memberSet)
	for _, e := range t.in[front] {
		if !set[e.From] {
			feeds[e.From] = true
		}
	}
	seen := make(memberSet)
	var stack []OpID
	for m := range set {
		for _, e := range t.out[m] {
			if !set[e.To] && !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if feeds[v] {
			return true
		}
		for _, e := range t.out[v] {
			if set[e.To] {
				// Re-entry into the subgraph other than via an external
				// feeder: direct edge back in.
				return true
			}
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return false
}

// FusionServiceTime evaluates Algorithm 3 by dynamic programming over the
// subgraph: it returns the meta-operator's expected service time per input
// item and, per external target, the expected number of items forwarded to
// it. The DP generalizes the paper's path enumeration to operators with
// non-unit selectivity: visits[u] is the expected number of items reaching
// member u per subgraph input, so the service time is sum(visits[u]*T_u)
// and an exit edge (u, x) carries visits[u]*gain(u)*p(u,x) items.
func FusionServiceTime(t *Topology, members []OpID, front OpID) (serviceTime float64, exits map[OpID]float64, err error) {
	set := newMemberSet(members)
	order, err := t.TopologicalOrder()
	if err != nil {
		return 0, nil, err
	}
	visits := make(map[OpID]float64, len(members))
	visits[front] = 1
	exits = make(map[OpID]float64)
	for _, v := range order {
		if !set[v] {
			continue
		}
		w := visits[v]
		if w == 0 {
			continue
		}
		serviceTime += w * t.ops[v].ServiceTime
		out := w * t.ops[v].Gain()
		for _, e := range t.out[v] {
			if set[e.To] {
				visits[e.To] += out * e.Prob
			} else {
				exits[e.To] += out * e.Prob
			}
		}
	}
	return serviceTime, exits, nil
}

// FusionServiceTimeByPaths evaluates Algorithm 3 exactly as printed in the
// paper: a recursive enumeration of all paths from the front-end, weighting
// each path's aggregate service time by its probability. It is exponential
// in the worst case and assumes unit selectivity; it exists as the
// reference implementation for tests and the ablation benchmark.
func FusionServiceTimeByPaths(t *Topology, members []OpID, front OpID) float64 {
	set := newMemberSet(members)
	var rec func(v OpID) float64
	rec = func(v OpID) float64 {
		total := t.ops[v].ServiceTime
		for _, e := range t.out[v] {
			if set[e.To] {
				total += e.Prob * rec(e.To)
			}
		}
		return total
	}
	return rec(front)
}

// Fuse replaces the subgraph identified by members with a single
// meta-operator named name, re-runs the steady-state analysis on both the
// original and the fused topology, and reports the predicted outcome. The
// original topology is left untouched; the fused topology is returned.
//
// The meta-operator is marked stateful: the paper forbids applying fission
// to meta-operators (Section 4.2). Its Fused field records the member
// names in topological order so code generation can reconstruct the
// internal routing (Algorithm 4).
func Fuse(t *Topology, members []OpID, name string) (*Topology, *FusionReport, error) {
	return FuseWith(t, members, name, DirectSolver{})
}

// FuseWith is Fuse with the steady-state analyses routed through solver,
// so a memoizing solver (internal/opt) can avoid re-solving the unchanged
// "before" topology across many candidate evaluations. FuseWith with
// DirectSolver is exactly Fuse.
func FuseWith(t *Topology, members []OpID, name string, solver Solver) (*Topology, *FusionReport, error) {
	if solver == nil {
		solver = DirectSolver{}
	}
	front, err := ValidateSubgraph(t, members)
	if err != nil {
		return nil, nil, err
	}
	before, err := solver.SteadyState(t)
	if err != nil {
		return nil, nil, err
	}
	serviceTime, exits, err := FusionServiceTime(t, members, front)
	if err != nil {
		return nil, nil, err
	}
	outSel := 0.0
	for _, w := range exits {
		outSel += w
	}
	set := newMemberSet(members)

	fused := NewTopology()
	idMap := make(map[OpID]OpID, t.Len())
	// Copy the surviving operators in original order, then append the
	// meta-operator.
	for i := range t.ops {
		if set[OpID(i)] {
			continue
		}
		op := t.ops[i]
		op.Keys = op.Keys.Clone()
		if op.Fused != nil {
			op.Fused = append([]string(nil), op.Fused...)
		}
		nid, err := fused.AddOperator(op)
		if err != nil {
			return nil, nil, fmt.Errorf("fuse: %w", err)
		}
		idMap[OpID(i)] = nid
	}
	memberNames := make([]string, 0, len(members))
	order, _ := t.TopologicalOrder()
	for _, v := range order {
		if set[v] {
			memberNames = append(memberNames, t.ops[v].Name)
		}
	}
	kind := KindStateful
	if len(exits) == 0 {
		kind = KindSink
	}
	if name == "" {
		name = "fused(" + strings.Join(memberNames, "+") + ")"
	}
	fid, err := fused.AddOperator(Operator{
		Name:              name,
		Kind:              kind,
		ServiceTime:       serviceTime,
		OutputSelectivity: outSel,
		Fused:             memberNames,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("fuse: %w", err)
	}

	// Re-create edges. Edges among survivors copy verbatim; edges into the
	// front-end redirect to the meta-operator; internal edges vanish; exit
	// edges leave the meta-operator with probabilities normalized over the
	// expected exit volume (their "joint probability").
	for i := range t.ops {
		if set[OpID(i)] {
			continue
		}
		for _, e := range t.out[i] {
			to := fid
			if !set[e.To] {
				to = idMap[e.To]
			}
			if err := fused.Connect(idMap[OpID(i)], to, e.Prob); err != nil {
				return nil, nil, fmt.Errorf("fuse: %w", err)
			}
		}
	}
	if outSel > 0 {
		targets := make([]OpID, 0, len(exits))
		for x := range exits {
			targets = append(targets, x)
		}
		sort.Slice(targets, func(a, b int) bool { return targets[a] < targets[b] })
		for _, x := range targets {
			if err := fused.Connect(fid, idMap[x], exits[x]/outSel); err != nil {
				return nil, nil, fmt.Errorf("fuse: %w", err)
			}
		}
	}

	after, err := solver.SteadyState(fused)
	if err != nil {
		return nil, nil, fmt.Errorf("fuse: analysis of fused topology: %w", err)
	}
	report := &FusionReport{
		FrontEnd:          front,
		Members:           append([]OpID(nil), members...),
		ServiceTime:       serviceTime,
		OutputSelectivity: outSel,
		Before:            before,
		After:             after,
		FusedID:           fid,
		SurvivorIDs:       idMap,
		ThroughputBefore:  before.Throughput(),
		ThroughputAfter:   after.Throughput(),
	}
	for _, v := range after.Limiting {
		if v == fid {
			report.IntroducesBottleneck = true
		}
	}
	return fused, report, nil
}

// FusionCandidate is a ranked fusion suggestion.
type FusionCandidate struct {
	// Members is the suggested subgraph.
	Members []OpID
	// FrontEnd is its entry vertex.
	FrontEnd OpID
	// FusedUtilization is the meta-operator's predicted utilization in
	// the fused topology; candidates are ranked by it ascending (most
	// underutilized first), mirroring the tool's GUI ranking.
	FusedUtilization float64
	// ServiceTime is the predicted meta-operator service time.
	ServiceTime float64
}

// FusionCandidates automates the paper's candidate-selection step: for each
// non-source vertex it considers the maximal subgraph it dominates (every
// path from the source into a dominated vertex passes through it, which
// guarantees the single-front-end constraint), validates it, and predicts
// the fusion outcome. Only candidates that do not introduce a bottleneck
// are returned, ranked by the meta-operator's utilization so the most
// underutilized regions come first.
func FusionCandidates(t *Topology, a *Analysis) ([]FusionCandidate, error) {
	return fusionCandidates(t, a, nil)
}

// fusionCandidates is FusionCandidates with an optional callback fired
// for dominated subgraphs discarded because the meta-operator would
// saturate — the paper's "alert" case, surfaced to rewrite traces.
func fusionCandidates(t *Topology, a *Analysis, onBottleneck func(members []OpID, rho float64)) ([]FusionCandidate, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if a == nil {
		var err error
		a, err = SteadyState(t)
		if err != nil {
			return nil, err
		}
	}
	dom, err := dominators(t)
	if err != nil {
		return nil, err
	}
	src := t.Source()
	var cands []FusionCandidate
	for f := 0; f < t.Len(); f++ {
		if OpID(f) == src {
			continue
		}
		members := dominatedSet(dom, OpID(f))
		if len(members) < 2 {
			continue
		}
		front, err := ValidateSubgraph(t, members)
		if err != nil {
			continue
		}
		st, _, err := FusionServiceTime(t, members, front)
		if err != nil {
			continue
		}
		rho := a.Lambda[front] * st
		if rho > 1 {
			// Would introduce a bottleneck.
			if onBottleneck != nil {
				onBottleneck(members, rho)
			}
			continue
		}
		cands = append(cands, FusionCandidate{
			Members:          members,
			FrontEnd:         front,
			FusedUtilization: rho,
			ServiceTime:      st,
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].FusedUtilization != cands[j].FusedUtilization {
			return cands[i].FusedUtilization < cands[j].FusedUtilization
		}
		return cands[i].FrontEnd < cands[j].FrontEnd
	})
	return cands, nil
}

// dominators computes the immediate dominator of every vertex with respect
// to the source, using the standard iterative dataflow over the topological
// order (a DAG needs a single pass).
func dominators(t *Topology) ([]OpID, error) {
	order, err := t.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	pos := make([]int, t.Len())
	for i, v := range order {
		pos[v] = i
	}
	idom := make([]OpID, t.Len())
	for i := range idom {
		idom[i] = -1
	}
	src := order[0]
	idom[src] = src
	intersect := func(a, b OpID) OpID {
		for a != b {
			for pos[a] > pos[b] {
				a = idom[a]
			}
			for pos[b] > pos[a] {
				b = idom[b]
			}
		}
		return a
	}
	for _, v := range order[1:] {
		var d OpID = -1
		for _, e := range t.in[v] {
			if idom[e.From] < 0 {
				continue
			}
			if d < 0 {
				d = e.From
			} else {
				d = intersect(d, e.From)
			}
		}
		idom[v] = d
	}
	return idom, nil
}

// dominatedSet returns f plus every vertex whose dominator chain contains f.
func dominatedSet(idom []OpID, f OpID) []OpID {
	var out []OpID
	for v := range idom {
		u := OpID(v)
		for {
			if u == f {
				out = append(out, OpID(v))
				break
			}
			if u < 0 || idom[u] == u {
				break
			}
			u = idom[u]
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
