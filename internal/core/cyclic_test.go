package core

import (
	"errors"
	"math"
	"testing"
)

func TestSteadyStateCyclicRelayLoop(t *testing.T) {
	// src -> work -> {sink 0.7, retry 0.3}; retry -> work. The feedback
	// multiplies work's arrivals by 1/(1-0.3).
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.001})
	work := topo.MustAddOperator(Operator{Name: "work", Kind: KindStateful, ServiceTime: 0.0005})
	retry := topo.MustAddOperator(Operator{Name: "retry", Kind: KindStateful, ServiceTime: 0.0001})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, work, 1)
	topo.MustConnect(work, sink, 0.7)
	topo.MustConnect(work, retry, 0.3)
	topo.MustConnect(retry, work, 1)

	// The acyclic analysis must reject it...
	if _, err := SteadyState(topo); !errors.Is(err, ErrCyclic) {
		t.Fatalf("acyclic analysis: got %v, want ErrCyclic", err)
	}
	// ...and the cyclic one solves the traffic equations.
	a, err := SteadyStateCyclic(topo)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "lambda work", a.Lambda[work], 1000/0.7, 1e-6)
	approx(t, "rho work", a.Rho[work], (1000/0.7)*0.0005, 1e-9)
	approx(t, "sink delta", a.Delta[sink], 1000, 1e-6)
	approx(t, "throughput", a.Throughput(), 1000, 1e-9)
	if a.Bottlenecked() {
		t.Errorf("Limiting = %v, want none (rho work = %.2f)", a.Limiting, a.Rho[work])
	}
}

func TestSteadyStateCyclicBottleneckInLoop(t *testing.T) {
	// Same loop but work is slow: its effective demand is 1/(1-p) times
	// the source, so the source must throttle accordingly.
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.001})
	work := topo.MustAddOperator(Operator{Name: "work", Kind: KindStateful, ServiceTime: 0.002})
	retry := topo.MustAddOperator(Operator{Name: "retry", Kind: KindStateful, ServiceTime: 0.0001})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, work, 1)
	topo.MustConnect(work, sink, 0.5)
	topo.MustConnect(work, retry, 0.5)
	topo.MustConnect(retry, work, 1)

	a, err := SteadyStateCyclic(topo)
	if err != nil {
		t.Fatal(err)
	}
	// work capacity 500/s; demand per source item = 1/(1-0.5) = 2:
	// throughput = 500/2 = 250/s.
	approx(t, "throughput", a.Throughput(), 250, 1e-6)
	approx(t, "rho work", a.Rho[work], 1, 1e-9)
	if len(a.Limiting) != 1 || a.Limiting[0] != work {
		t.Errorf("Limiting = %v, want [work]", a.Limiting)
	}
	approx(t, "sink delta", a.Delta[sink], 250, 1e-6)
}

func TestSteadyStateCyclicMatchesAcyclicOnDAGs(t *testing.T) {
	// On acyclic graphs the cyclic solver must agree with Algorithm 1.
	topo, _ := PaperExampleTopology(PaperExampleTable2)
	acyclic, err := SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	cyclic, err := SteadyStateCyclic(topo)
	if err != nil {
		t.Fatal(err)
	}
	for i := range acyclic.Delta {
		if math.Abs(acyclic.Delta[i]-cyclic.Delta[i]) > 1e-6*(acyclic.Delta[i]+1) {
			t.Fatalf("delta[%d]: %v vs %v", i, acyclic.Delta[i], cyclic.Delta[i])
		}
	}
}

func TestSteadyStateCyclicDivergence(t *testing.T) {
	// A loop with an amplifying gain feeds back more than it consumes.
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.001})
	boost := topo.MustAddOperator(Operator{
		Name: "boost", Kind: KindStateful, ServiceTime: 0.0001, OutputSelectivity: 3,
	})
	relay := topo.MustAddOperator(Operator{Name: "relay", Kind: KindStateful, ServiceTime: 0.0001})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, boost, 1)
	topo.MustConnect(boost, relay, 0.5)
	topo.MustConnect(boost, sink, 0.5)
	topo.MustConnect(relay, boost, 1)

	if _, err := SteadyStateCyclic(topo); !errors.Is(err, ErrDivergentCycle) {
		t.Fatalf("got %v, want ErrDivergentCycle", err)
	}
}

func TestValidateCyclicErrors(t *testing.T) {
	if err := NewTopology().ValidateCyclic(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
	topo := NewTopology()
	a := topo.MustAddOperator(Operator{Name: "a", Kind: KindSource, ServiceTime: 1})
	b := topo.MustAddOperator(Operator{Name: "b", Kind: KindSink, ServiceTime: 1})
	topo.MustConnect(a, b, 0.5)
	if err := topo.ValidateCyclic(); !errors.Is(err, ErrBadProbability) {
		t.Errorf("bad probability: %v", err)
	}
}
