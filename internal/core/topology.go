package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind classifies an operator's state, which determines whether fission can
// be applied to it (Section 3.2 of the paper).
type Kind int

const (
	// KindSource marks the unique root of a topology. Sources generate the
	// input stream at their service rate and are never replicated.
	KindSource Kind = iota + 1
	// KindStateless operators keep no state across items and can be
	// replicated with any load-balanced routing (shuffle/round-robin).
	KindStateless
	// KindPartitionedStateful operators keep state per partitioning key;
	// replicas each own a subset of the key domain.
	KindPartitionedStateful
	// KindStateful operators keep monolithic state and cannot be replicated.
	KindStateful
	// KindSink marks a terminal operator (no output edges). Sinks consume
	// results; they behave like stateful operators for fission purposes.
	KindSink
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindStateless:
		return "stateless"
	case KindPartitionedStateful:
		return "partitioned-stateful"
	case KindStateful:
		return "stateful"
	case KindSink:
		return "sink"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// CanReplicate reports whether fission applies to operators of this kind.
func (k Kind) CanReplicate() bool {
	return k == KindStateless || k == KindPartitionedStateful
}

// OpID identifies an operator inside a Topology. IDs are dense indices
// assigned by AddOperator in insertion order.
type OpID int

// KeyDistribution describes the key domain of a partitioned-stateful
// operator: Freq[k] is the fraction of input items carrying key k.
// Frequencies must be positive and sum to 1 (within tolerance).
type KeyDistribution struct {
	Freq []float64
}

// Validate checks that the distribution is a proper probability vector.
func (d *KeyDistribution) Validate() error {
	if d == nil || len(d.Freq) == 0 {
		return errors.New("key distribution: empty")
	}
	sum := 0.0
	for i, f := range d.Freq {
		// !(f > 0) instead of f <= 0: NaN fails both orderings, and a NaN
		// frequency would otherwise slip through into the load model.
		if !(f > 0) || math.IsInf(f, 1) {
			return fmt.Errorf("key distribution: frequency %d is %v, must be a finite value > 0", i, f)
		}
		sum += f
	}
	if sum < 1-probTolerance || sum > 1+probTolerance {
		return fmt.Errorf("key distribution: frequencies sum to %v, want 1", sum)
	}
	return nil
}

// Clone returns a deep copy of the distribution. Cloning a nil distribution
// returns nil.
func (d *KeyDistribution) Clone() *KeyDistribution {
	if d == nil {
		return nil
	}
	freq := make([]float64, len(d.Freq))
	copy(freq, d.Freq)
	return &KeyDistribution{Freq: freq}
}

// Operator is a vertex of the topology: a sequential queueing station with a
// profiled mean service time and selectivity parameters (Section 3.4).
type Operator struct {
	// Name is a human-readable identifier, unique within the topology.
	Name string
	// Kind determines how the optimizer may restructure the operator.
	Kind Kind
	// ServiceTime is the profiled mean time, in seconds, the operator needs
	// to consume one input item (T = 1/mu). Must be > 0.
	ServiceTime float64
	// InputSelectivity is the average number of input items consumed before
	// one activation produces output (e.g. the slide of a count window).
	// Zero means the default of 1.
	InputSelectivity float64
	// OutputSelectivity is the average number of output items produced per
	// activation (e.g. >1 for flatmap, <1 for a filter's pass rate).
	// Zero means the default of 1.
	OutputSelectivity float64
	// Keys describes the key-frequency distribution for
	// partitioned-stateful operators; nil otherwise.
	Keys *KeyDistribution
	// Impl optionally references the implementation (the analog of the
	// paper's .class file pathname) used by code generation and the runtime
	// operator registry.
	Impl string
	// Fused lists the names of the original operators this vertex replaced
	// when it was produced by operator fusion; nil for ordinary operators.
	Fused []string
}

// Rate returns the service rate mu = 1/ServiceTime in items per second.
func (o *Operator) Rate() float64 {
	if o.ServiceTime <= 0 {
		return 0
	}
	return 1 / o.ServiceTime
}

// Gain returns the rate multiplier applied by the operator at steady state:
// OutputSelectivity / InputSelectivity, with zero fields defaulting to 1.
func (o *Operator) Gain() float64 {
	return o.outSel() / o.inSel()
}

func (o *Operator) inSel() float64 {
	if o.InputSelectivity <= 0 {
		return 1
	}
	return o.InputSelectivity
}

func (o *Operator) outSel() float64 {
	if o.OutputSelectivity <= 0 {
		return 1
	}
	return o.OutputSelectivity
}

// Edge is a directed stream between two operators. Prob is the probability
// that an output item of From is routed to To; the probabilities of the
// edges leaving a vertex must sum to 1.
type Edge struct {
	From OpID
	To   OpID
	Prob float64
}

// Topology is a directed graph of operators connected by streams. The zero
// value is an empty topology ready for use; populate it with AddOperator and
// Connect, then call Validate before running any analysis.
type Topology struct {
	ops    []Operator
	out    [][]Edge // adjacency by source vertex
	in     [][]Edge // reverse adjacency by target vertex
	byName map[string]OpID
}

// probTolerance is the slack allowed when checking that probabilities sum
// to one, absorbing float rounding in profiled inputs.
const probTolerance = 1e-6

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{byName: make(map[string]OpID)}
}

// AddOperator appends op as a new vertex and returns its ID. The operator
// name must be non-empty and unique.
func (t *Topology) AddOperator(op Operator) (OpID, error) {
	if t.byName == nil {
		t.byName = make(map[string]OpID)
	}
	if op.Name == "" {
		return -1, errors.New("add operator: empty name")
	}
	if _, dup := t.byName[op.Name]; dup {
		return -1, fmt.Errorf("add operator: duplicate name %q", op.Name)
	}
	// !(x > 0) instead of x <= 0 so NaN service times are rejected too:
	// NaN compares false against everything and would otherwise pass
	// straight into the steady-state equations.
	if !(op.ServiceTime > 0) || math.IsInf(op.ServiceTime, 1) {
		return -1, fmt.Errorf("add operator %q: service time %v, must be finite and > 0", op.Name, op.ServiceTime)
	}
	if math.IsNaN(op.InputSelectivity) || math.IsInf(op.InputSelectivity, 0) {
		return -1, fmt.Errorf("add operator %q: input selectivity %v, must be finite", op.Name, op.InputSelectivity)
	}
	if math.IsNaN(op.OutputSelectivity) || math.IsInf(op.OutputSelectivity, 0) {
		return -1, fmt.Errorf("add operator %q: output selectivity %v, must be finite", op.Name, op.OutputSelectivity)
	}
	if op.Kind < KindSource || op.Kind > KindSink {
		return -1, fmt.Errorf("add operator %q: invalid kind %d", op.Name, int(op.Kind))
	}
	if op.Kind == KindPartitionedStateful {
		if err := op.Keys.Validate(); err != nil {
			return -1, fmt.Errorf("add operator %q: %w", op.Name, err)
		}
	}
	id := OpID(len(t.ops))
	t.ops = append(t.ops, op)
	t.out = append(t.out, nil)
	t.in = append(t.in, nil)
	t.byName[op.Name] = id
	return id, nil
}

// MustAddOperator is AddOperator that panics on error; intended for tests
// and statically-known topologies such as examples.
func (t *Topology) MustAddOperator(op Operator) OpID {
	id, err := t.AddOperator(op)
	if err != nil {
		panic(err)
	}
	return id
}

// Connect adds a stream from -> to carrying prob of from's output items.
func (t *Topology) Connect(from, to OpID, prob float64) error {
	if !t.valid(from) || !t.valid(to) {
		return fmt.Errorf("connect: invalid operator id (%d -> %d)", from, to)
	}
	if from == to {
		return fmt.Errorf("connect: self-loop on %q", t.ops[from].Name)
	}
	if !(prob > 0) || prob > 1+probTolerance {
		return fmt.Errorf("connect %q -> %q: probability %v outside (0, 1]", t.ops[from].Name, t.ops[to].Name, prob)
	}
	for _, e := range t.out[from] {
		if e.To == to {
			return fmt.Errorf("connect: duplicate edge %q -> %q", t.ops[from].Name, t.ops[to].Name)
		}
	}
	e := Edge{From: from, To: to, Prob: prob}
	t.out[from] = append(t.out[from], e)
	t.in[to] = append(t.in[to], e)
	return nil
}

// MustConnect is Connect that panics on error.
func (t *Topology) MustConnect(from, to OpID, prob float64) {
	if err := t.Connect(from, to, prob); err != nil {
		panic(err)
	}
}

func (t *Topology) valid(id OpID) bool {
	return id >= 0 && int(id) < len(t.ops)
}

// Len returns the number of operators.
func (t *Topology) Len() int { return len(t.ops) }

// NumEdges returns the number of streams.
func (t *Topology) NumEdges() int {
	n := 0
	for _, es := range t.out {
		n += len(es)
	}
	return n
}

// Op returns the operator with the given ID. The returned pointer stays
// valid until the next AddOperator call and may be used to adjust profiled
// fields in place.
func (t *Topology) Op(id OpID) *Operator {
	return &t.ops[id]
}

// Lookup returns the ID of the operator with the given name.
func (t *Topology) Lookup(name string) (OpID, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// Out returns the output edges of id. The caller must not modify the
// returned slice.
func (t *Topology) Out(id OpID) []Edge { return t.out[id] }

// In returns the input edges of id. The caller must not modify the returned
// slice.
func (t *Topology) In(id OpID) []Edge { return t.in[id] }

// Sources returns the IDs of all vertices without input edges.
func (t *Topology) Sources() []OpID {
	var srcs []OpID
	for i := range t.ops {
		if len(t.in[i]) == 0 {
			srcs = append(srcs, OpID(i))
		}
	}
	return srcs
}

// Sinks returns the IDs of all vertices without output edges.
func (t *Topology) Sinks() []OpID {
	var sinks []OpID
	for i := range t.ops {
		if len(t.out[i]) == 0 {
			sinks = append(sinks, OpID(i))
		}
	}
	return sinks
}

// Clone returns a deep copy of the topology.
func (t *Topology) Clone() *Topology {
	c := NewTopology()
	c.ops = make([]Operator, len(t.ops))
	copy(c.ops, t.ops)
	for i := range c.ops {
		c.ops[i].Keys = t.ops[i].Keys.Clone()
		if t.ops[i].Fused != nil {
			c.ops[i].Fused = append([]string(nil), t.ops[i].Fused...)
		}
		c.byName[c.ops[i].Name] = OpID(i)
	}
	c.out = make([][]Edge, len(t.out))
	c.in = make([][]Edge, len(t.in))
	for i, es := range t.out {
		if es != nil {
			c.out[i] = append([]Edge(nil), es...)
		}
	}
	for i, es := range t.in {
		if es != nil {
			c.in[i] = append([]Edge(nil), es...)
		}
	}
	return c
}

// String renders a compact multi-line description, useful in logs and tests.
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology: %d operators, %d edges\n", t.Len(), t.NumEdges())
	for i, op := range t.ops {
		fmt.Fprintf(&b, "  [%d] %s (%s, T=%.6gs", i, op.Name, op.Kind, op.ServiceTime)
		if op.Gain() != 1 {
			fmt.Fprintf(&b, ", gain=%.4g", op.Gain())
		}
		b.WriteString(")")
		for _, e := range t.out[i] {
			fmt.Fprintf(&b, " ->%s(%.3g)", t.ops[e.To].Name, e.Prob)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TopologicalOrder returns the vertex IDs in a topological ordering with the
// source first. It fails if the graph has a cycle.
func (t *Topology) TopologicalOrder() ([]OpID, error) {
	n := t.Len()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(t.in[i])
	}
	// Deterministic order: lowest-ID-first among ready vertices.
	ready := make([]OpID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, OpID(i))
		}
	}
	order := make([]OpID, 0, n)
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool { return ready[a] < ready[b] })
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, e := range t.out[v] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCyclic
	}
	return order, nil
}
