package core

import (
	"math/rand"
	"testing"

	"spinstreams/internal/keypart"
)

func TestEliminateBottlenecksStateless(t *testing.T) {
	// Middle stage 3.5x slower than the source: needs ceil(3.5) = 4 replicas.
	topo, ids := mustPipeline(t, 0.001, 0.0035, 0.0001)
	res, err := EliminateBottlenecks(topo, FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Analysis.Replicas[ids[1]]; got != 4 {
		t.Errorf("replicas = %d, want 4", got)
	}
	approx(t, "throughput", res.Analysis.Throughput(), 1000, 1e-6)
	if len(res.Unresolved) != 0 {
		t.Errorf("Unresolved = %v, want empty", res.Unresolved)
	}
	if res.AdditionalReplicas != 3 {
		t.Errorf("AdditionalReplicas = %d, want 3", res.AdditionalReplicas)
	}
	if res.TotalReplicas != topo.Len()+3 {
		t.Errorf("TotalReplicas = %d, want %d", res.TotalReplicas, topo.Len()+3)
	}
}

func TestEliminateBottlenecksStatefulRemains(t *testing.T) {
	// A monolithic stateful bottleneck cannot be replicated: the source
	// rate is corrected instead (Algorithm 2 line 24).
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.001})
	st := topo.MustAddOperator(Operator{Name: "state", Kind: KindStateful, ServiceTime: 0.004})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, st, 1)
	topo.MustConnect(st, sink, 1)
	res, err := EliminateBottlenecks(topo, FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "throughput", res.Analysis.Throughput(), 250, 1e-6)
	if res.Analysis.Replicas[st] != 1 {
		t.Errorf("stateful operator replicated: %d", res.Analysis.Replicas[st])
	}
	if len(res.Unresolved) != 1 || res.Unresolved[0] != st {
		t.Errorf("Unresolved = %v, want [%d]", res.Unresolved, st)
	}
}

func TestEliminateBottlenecksPartitionedStateful(t *testing.T) {
	// Even key distribution over 100 keys: fission fully unblocks.
	freq := make([]float64, 100)
	for i := range freq {
		freq[i] = 0.01
	}
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.001})
	ps := topo.MustAddOperator(Operator{
		Name: "ps", Kind: KindPartitionedStateful, ServiceTime: 0.0029,
		Keys: &KeyDistribution{Freq: freq},
	})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, ps, 1)
	topo.MustConnect(ps, sink, 1)

	res, err := EliminateBottlenecks(topo, FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Analysis.Replicas[ps] != 3 {
		t.Errorf("replicas = %d, want 3", res.Analysis.Replicas[ps])
	}
	approx(t, "throughput", res.Analysis.Throughput(), 1000, 1)
	if len(res.Unresolved) != 0 {
		t.Errorf("Unresolved = %v, want empty", res.Unresolved)
	}
}

func TestEliminateBottlenecksSkewedKeys(t *testing.T) {
	// The paper's worked example: nopt = 3 but one key holds 50% of the
	// items, so the bottleneck can be mitigated but not removed; the
	// source rate is corrected against the most loaded replica.
	freq := []float64{0.5, 0.25, 0.25}
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.001})
	ps := topo.MustAddOperator(Operator{
		Name: "ps", Kind: KindPartitionedStateful, ServiceTime: 0.0025, // rho = 2.5, nopt = 3
		Keys: &KeyDistribution{Freq: freq},
	})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, ps, 1)
	topo.MustConnect(ps, sink, 1)

	res, err := EliminateBottlenecks(topo, FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Analysis
	// Greedy packs {0.5} and {0.25+0.25}: 2 usable replicas, pmax = 0.5.
	if a.Replicas[ps] != 2 {
		t.Errorf("replicas = %d, want 2", a.Replicas[ps])
	}
	approx(t, "pmax", a.PMax[ps], 0.5, 1e-12)
	// Most loaded replica caps lambda at mu/pmax = 400/0.5 = 800/s.
	approx(t, "throughput", a.Throughput(), 800, 1e-6)
	if len(res.Unresolved) != 1 || res.Unresolved[0] != ps {
		t.Errorf("Unresolved = %v, want [%d]", res.Unresolved, ps)
	}
}

func TestEliminateBottlenecksBudget(t *testing.T) {
	// Unbounded pass needs 10 replicas of the hot stage; cap the total.
	topo, ids := mustPipeline(t, 0.001, 0.010, 0.0001)
	unbounded, err := EliminateBottlenecks(topo, FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.Analysis.Replicas[ids[1]] != 10 {
		t.Fatalf("unbounded replicas = %d, want 10", unbounded.Analysis.Replicas[ids[1]])
	}
	bounded, err := EliminateBottlenecks(topo, FissionOptions{MaxReplicas: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bounded.Capped {
		t.Error("Capped = false, want true")
	}
	if bounded.TotalReplicas > 7 {
		t.Errorf("TotalReplicas = %d, want <= 7", bounded.TotalReplicas)
	}
	// Proportional de-scaling: with 5 replicas of the hot stage the
	// throughput is ~500/s.
	got := bounded.Analysis.Throughput()
	if got <= 0 || got > unbounded.Analysis.Throughput() {
		t.Errorf("bounded throughput = %v, want in (0, %v]", got, unbounded.Analysis.Throughput())
	}
	wantReplicas := bounded.Analysis.Replicas[ids[1]]
	approx(t, "throughput", got, 100*float64(wantReplicas), 1e-6)
}

func TestEliminateBottlenecksBudgetNotBinding(t *testing.T) {
	topo, _ := mustPipeline(t, 0.001, 0.0035, 0.0001)
	res, err := EliminateBottlenecks(topo, FissionOptions{MaxReplicas: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Capped {
		t.Error("Capped = true for a non-binding budget")
	}
	approx(t, "throughput", res.Analysis.Throughput(), 1000, 1e-6)
}

func TestEliminateBottlenecksEmitterCap(t *testing.T) {
	// The emitter saturates at 2000/s; arrivals of 5000/s cannot be
	// scheduled, so replication is capped rather than wasted.
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.0002}) // 5000/s
	hot := topo.MustAddOperator(Operator{Name: "hot", Kind: KindStateless, ServiceTime: 0.002})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.00001})
	topo.MustConnect(src, hot, 1)
	topo.MustConnect(hot, sink, 1)

	uncapped, err := EliminateBottlenecks(topo, FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if uncapped.Analysis.Replicas[hot] != 10 {
		t.Fatalf("uncapped replicas = %d, want 10", uncapped.Analysis.Replicas[hot])
	}
	capped, err := EliminateBottlenecks(topo, FissionOptions{EmitterServiceTime: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if got := capped.Analysis.Replicas[hot]; got >= 10 || got < 1 {
		t.Errorf("capped replicas = %d, want in [1, 10)", got)
	}
}

func TestEliminateBottlenecksConsistentHashPartitioner(t *testing.T) {
	freq := make([]float64, 64)
	for i := range freq {
		freq[i] = 1.0 / 64
	}
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.001})
	ps := topo.MustAddOperator(Operator{
		Name: "ps", Kind: KindPartitionedStateful, ServiceTime: 0.003,
		Keys: &KeyDistribution{Freq: freq},
	})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, ps, 1)
	topo.MustConnect(ps, sink, 1)

	res, err := EliminateBottlenecks(topo, FissionOptions{Partitioner: keypart.ConsistentHash{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Analysis.Replicas[ps] < 2 {
		t.Errorf("replicas = %d, want >= 2", res.Analysis.Replicas[ps])
	}
	// Hashing is load-oblivious; throughput improves but the uneven pmax
	// may keep the operator saturated. Either way rho <= 1 afterwards.
	if res.Analysis.Rho[ps] > 1+1e-9 {
		t.Errorf("rho = %v, want <= 1", res.Analysis.Rho[ps])
	}
}

// TestEliminateBottlenecksNeverWorse: fission must never predict lower
// throughput than the unoptimized analysis, on random topologies.
func TestEliminateBottlenecksNeverWorse(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed + 5000))
		topo := randomDAG(rng, 16)
		base, err := SteadyState(topo)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := EliminateBottlenecks(topo, FissionOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Analysis.Throughput() < base.Throughput()*(1-1e-9) {
			t.Fatalf("seed %d: fission lowered throughput %v -> %v",
				seed, base.Throughput(), res.Analysis.Throughput())
		}
		for i, rho := range res.Analysis.Rho {
			if rho > 1+1e-6 {
				t.Fatalf("seed %d: rho[%d] = %v > 1 after fission", seed, i, rho)
			}
		}
	}
}

func TestOptimalDegree(t *testing.T) {
	tests := []struct {
		rho  float64
		want int
	}{
		{0.5, 1}, {1.0, 1}, {1.0000000001, 1}, {1.5, 2}, {2.0, 2}, {3.2, 4},
	}
	for _, tc := range tests {
		if got := optimalDegree(tc.rho); got != tc.want {
			t.Errorf("optimalDegree(%v) = %d, want %d", tc.rho, got, tc.want)
		}
	}
}
