package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestSteadyStatePipelineNoBottleneck(t *testing.T) {
	// Source slower than every stage: no backpressure anywhere.
	topo, ids := mustPipeline(t, 0.010, 0.002, 0.001)
	a, err := SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "throughput", a.Throughput(), 100, 1e-9)
	for _, id := range ids {
		approx(t, "delta", a.Delta[id], 100, 1e-9)
	}
	if a.Bottlenecked() {
		t.Errorf("Limiting = %v, want empty", a.Limiting)
	}
	approx(t, "rho mid", a.Rho[ids[1]], 0.2, 1e-12)
}

func TestSteadyStatePipelineBottleneck(t *testing.T) {
	// Middle stage is 4x slower than the source: throughput capped at 250/s.
	topo, ids := mustPipeline(t, 0.001, 0.004, 0.0001)
	a, err := SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "throughput", a.Throughput(), 250, 1e-6)
	approx(t, "rho bottleneck", a.Rho[ids[1]], 1, 1e-9)
	approx(t, "sink delta", a.Delta[ids[2]], 250, 1e-6)
	if len(a.Limiting) != 1 || a.Limiting[0] != ids[1] {
		t.Errorf("Limiting = %v, want [%d]", a.Limiting, ids[1])
	}
	if a.Restarts == 0 {
		t.Error("Restarts = 0, want at least one source correction")
	}
}

func TestSteadyStateSuccessiveBottlenecks(t *testing.T) {
	// Two bottlenecks; the slowest wins. Exercises repeated corrections.
	topo, ids := mustPipeline(t, 0.001, 0.002, 0.005, 0.0001)
	a, err := SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "throughput", a.Throughput(), 200, 1e-6)
	approx(t, "rho second", a.Rho[ids[2]], 1, 1e-9)
	// The earlier, milder bottleneck ends below saturation after the final
	// correction.
	if a.Rho[ids[1]] > 1+rhoTolerance {
		t.Errorf("rho[1] = %v, want <= 1", a.Rho[ids[1]])
	}
}

func TestSteadyStatePaperTable1(t *testing.T) {
	topo, _ := PaperExampleTopology(PaperExampleTable1)
	a, err := SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	// Expected per-operator figures from Table 1 (tolerances reflect the
	// paper's 2-digit rounding).
	wantRho := []float64{1.0, 0.84, 0.21, 0.40, 0.225, 0.20}
	wantDelta := []float64{1000, 700, 300, 200, 150, 1000}
	for i := range wantRho {
		approx(t, "rho"+string(rune('1'+i)), a.Rho[i], wantRho[i], 0.01)
		approx(t, "delta"+string(rune('1'+i)), a.Delta[i], wantDelta[i], 0.5)
	}
	approx(t, "throughput", a.Throughput(), 1000, 1e-6)
	if a.Bottlenecked() {
		t.Errorf("Limiting = %v, want empty", a.Limiting)
	}
}

func TestSteadyStatePaperTable2(t *testing.T) {
	topo, _ := PaperExampleTopology(PaperExampleTable2)
	a, err := SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	wantRho := []float64{1.0, 0.84, 0.45, 0.54, 0.33, 0.20}
	for i := range wantRho {
		approx(t, "rho", a.Rho[i], wantRho[i], 0.015)
	}
	approx(t, "throughput", a.Throughput(), 1000, 1e-6)
}

func TestSteadyStateInputSelectivity(t *testing.T) {
	// A window with slide 10 consumes 10 items per emitted aggregate.
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.001})
	win := topo.MustAddOperator(Operator{
		Name: "win", Kind: KindStateful, ServiceTime: 0.0001, InputSelectivity: 10,
	})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, win, 1)
	topo.MustConnect(win, sink, 1)
	a, err := SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "window delta", a.Delta[win], 100, 1e-9)
	approx(t, "sink lambda", a.Lambda[sink], 100, 1e-9)
	approx(t, "throughput", a.Throughput(), 1000, 1e-9)
}

func TestSteadyStateOutputSelectivity(t *testing.T) {
	// A flatmap emitting 3 items per input can saturate its consumer.
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.001})
	fm := topo.MustAddOperator(Operator{
		Name: "flatmap", Kind: KindStateless, ServiceTime: 0.0001, OutputSelectivity: 3,
	})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.0005})
	topo.MustConnect(src, fm, 1)
	topo.MustConnect(fm, sink, 1)
	a, err := SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	// Sink capacity 2000/s; arrival 3*1000 = 3000/s -> backpressure caps
	// ingestion at 2000/3 items/s.
	approx(t, "throughput", a.Throughput(), 2000.0/3.0, 1e-6)
	approx(t, "sink rho", a.Rho[sink], 1, 1e-9)
	approx(t, "flatmap delta", a.Delta[fm], 2000, 1e-6)
}

func TestSteadyStateFilterSelectivity(t *testing.T) {
	// A filter passing 20% shields the downstream from overload.
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.001})
	f := topo.MustAddOperator(Operator{
		Name: "filter", Kind: KindStateless, ServiceTime: 0.0001, OutputSelectivity: 0.2,
	})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.004})
	topo.MustConnect(src, f, 1)
	topo.MustConnect(f, sink, 1)
	a, err := SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	// Sink sees 200/s against a 250/s capacity: no bottleneck.
	approx(t, "throughput", a.Throughput(), 1000, 1e-9)
	approx(t, "sink rho", a.Rho[sink], 0.8, 1e-9)
}

func TestSteadyStateDiamondSplit(t *testing.T) {
	// Diamond where one branch is saturated; check Theorem 3.2's path
	// weighting: lambda_b = 0.9 * delta1, capacity 500 -> delta1 = 555.5.
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.001})
	b := topo.MustAddOperator(Operator{Name: "b", Kind: KindStateful, ServiceTime: 0.002})
	c := topo.MustAddOperator(Operator{Name: "c", Kind: KindStateful, ServiceTime: 0.0001})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, b, 0.9)
	topo.MustConnect(src, c, 0.1)
	topo.MustConnect(b, sink, 1)
	topo.MustConnect(c, sink, 1)
	a, err := SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "throughput", a.Throughput(), 500/0.9, 1e-6)
	approx(t, "rho b", a.Rho[b], 1, 1e-9)
	approx(t, "sink delta", a.Delta[sink], 500/0.9, 1e-6)
}

func TestSteadyStateRejectsInvalid(t *testing.T) {
	topo := NewTopology()
	if _, err := SteadyState(topo); err == nil {
		t.Fatal("SteadyState on empty topology succeeded")
	}
}

// randomDAG builds a random rooted acyclic topology for property tests.
// Every vertex is reachable from the source and probabilities sum to 1.
func randomDAG(rng *rand.Rand, maxV int) *Topology {
	n := 2 + rng.Intn(maxV-1)
	topo := NewTopology()
	ids := make([]OpID, n)
	for i := 0; i < n; i++ {
		kind := KindStateless
		if i == 0 {
			kind = KindSource
		} else if rng.Intn(4) == 0 {
			kind = KindStateful
		}
		st := 1e-4 + rng.Float64()*1e-2
		var gainIn, gainOut float64
		if i > 0 && rng.Intn(5) == 0 {
			gainOut = 0.25 + rng.Float64()*3
		}
		ids[i] = topo.MustAddOperator(Operator{
			Name:              "v" + itoa(i),
			Kind:              kind,
			ServiceTime:       st,
			InputSelectivity:  gainIn,
			OutputSelectivity: gainOut,
		})
	}
	// Ensure reachability: every vertex (except the source) gets one edge
	// from a random earlier vertex; then sprinkle extras.
	type pair struct{ u, v int }
	seen := map[pair]bool{}
	for i := 1; i < n; i++ {
		u := rng.Intn(i)
		seen[pair{u, i}] = true
	}
	extra := rng.Intn(n)
	for k := 0; k < extra; k++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		seen[pair{u, v}] = true
	}
	// Assign probabilities per source vertex.
	outs := make(map[int][]int)
	for p := range seen {
		outs[p.u] = append(outs[p.u], p.v)
	}
	for u, vs := range outs {
		weights := make([]float64, len(vs))
		sum := 0.0
		for i := range weights {
			weights[i] = 0.1 + rng.Float64()
			sum += weights[i]
		}
		for i, v := range vs {
			topo.MustConnect(ids[u], ids[v], weights[i]/sum)
		}
	}
	return topo
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestSteadyStateFlowConservation checks Proposition 3.5 on random DAGs
// with unit selectivity: the source departure rate equals the total sink
// departure rate.
func TestSteadyStateFlowConservation(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		topo := randomDAG(local, 18)
		// Force unit selectivity for this property.
		for i := 0; i < topo.Len(); i++ {
			topo.Op(OpID(i)).InputSelectivity = 0
			topo.Op(OpID(i)).OutputSelectivity = 0
		}
		a, err := SteadyState(topo)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return math.Abs(a.SourceRate-a.SinkRate) <= 1e-6*a.SourceRate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyStateInvariant checks Invariant 3.1 at termination on random
// DAGs (including selectivity): every utilization factor is <= 1.
func TestSteadyStateInvariant(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		topo := randomDAG(rng, 20)
		a, err := SteadyState(topo)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, rho := range a.Rho {
			if rho > 1+1e-6 {
				t.Fatalf("seed %d: rho[%d] = %v > 1", seed, i, rho)
			}
		}
		if a.Throughput() <= 0 {
			t.Fatalf("seed %d: throughput %v", seed, a.Throughput())
		}
	}
}

// TestSteadyStateMonotoneInServiceTime: slowing any single operator can
// never increase the predicted topology throughput.
func TestSteadyStateMonotoneInServiceTime(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		topo := randomDAG(rng, 15)
		base, err := SteadyState(topo)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		victim := OpID(rng.Intn(topo.Len()))
		slowed := topo.Clone()
		slowed.Op(victim).ServiceTime *= 3
		got, err := SteadyState(slowed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Throughput() > base.Throughput()*(1+1e-9) {
			t.Fatalf("seed %d: slowing op %d raised throughput %v -> %v",
				seed, victim, base.Throughput(), got.Throughput())
		}
	}
}

// TestSteadyStateFastAgrees: the single-pass ablation variant must produce
// the same rates and utilizations as the paper's restart algorithm.
func TestSteadyStateFastAgrees(t *testing.T) {
	check := func(t *testing.T, topo *Topology) {
		t.Helper()
		slow, err := SteadyState(topo)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := SteadyStateFast(topo)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(slow.Throughput()-fast.Throughput()) > 1e-9*(slow.Throughput()+1) {
			t.Fatalf("throughput %v vs %v", slow.Throughput(), fast.Throughput())
		}
		for i := range slow.Delta {
			if math.Abs(slow.Delta[i]-fast.Delta[i]) > 1e-6*(slow.Delta[i]+1) {
				t.Fatalf("delta[%d]: %v vs %v", i, slow.Delta[i], fast.Delta[i])
			}
			if math.Abs(slow.Rho[i]-fast.Rho[i]) > 1e-6 {
				t.Fatalf("rho[%d]: %v vs %v", i, slow.Rho[i], fast.Rho[i])
			}
		}
	}
	t.Run("paper table 1", func(t *testing.T) {
		topo, _ := PaperExampleTopology(PaperExampleTable1)
		check(t, topo)
	})
	t.Run("paper table 2 fused", func(t *testing.T) {
		topo, sub := PaperExampleTopology(PaperExampleTable2)
		fused, _, err := Fuse(topo, sub, "F")
		if err != nil {
			t.Fatal(err)
		}
		check(t, fused)
	})
	t.Run("random", func(t *testing.T) {
		for seed := int64(0); seed < 300; seed++ {
			rng := rand.New(rand.NewSource(seed + 77000))
			topo := randomDAG(rng, 20)
			check(t, topo)
		}
	})
}
