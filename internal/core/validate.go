package core

import (
	"errors"
	"fmt"
	"math"
)

// Validation errors. Callers can match them with errors.Is after Validate
// wraps them with positional context.
var (
	// ErrEmpty reports a topology with no operators.
	ErrEmpty = errors.New("topology is empty")
	// ErrCyclic reports that the graph contains a directed cycle; the cost
	// models require acyclic topologies.
	ErrCyclic = errors.New("topology has a cycle")
	// ErrNoSource reports that no vertex lacks input edges.
	ErrNoSource = errors.New("topology has no source")
	// ErrMultipleSources reports more than one root; use
	// AddFictitiousSource to analyze multi-source graphs.
	ErrMultipleSources = errors.New("topology has multiple sources")
	// ErrUnreachable reports vertices not reachable from the source,
	// violating the flow-graph assumption.
	ErrUnreachable = errors.New("vertex unreachable from source")
	// ErrBadProbability reports output edge probabilities that do not sum
	// to 1 for a vertex with outputs.
	ErrBadProbability = errors.New("output probabilities do not sum to 1")
	// ErrBadKind reports a kind inconsistent with the graph position, such
	// as a non-source root or a source with input edges.
	ErrBadKind = errors.New("operator kind inconsistent with topology position")
)

// Validate checks the structural assumptions the SpinStreams cost models
// rely on (Section 3.1): the graph is non-empty, rooted at a single source,
// acyclic, every vertex is reachable from the source, and the probabilities
// of each vertex's output edges sum to one.
func (t *Topology) Validate() error {
	if t.Len() == 0 {
		return ErrEmpty
	}
	srcs := t.Sources()
	switch {
	case len(srcs) == 0:
		return ErrNoSource
	case len(srcs) > 1:
		names := make([]string, len(srcs))
		for i, s := range srcs {
			names[i] = t.ops[s].Name
		}
		return fmt.Errorf("%w: %v", ErrMultipleSources, names)
	}
	src := srcs[0]
	if t.ops[src].Kind != KindSource {
		return fmt.Errorf("%w: root %q has kind %s, want source", ErrBadKind, t.ops[src].Name, t.ops[src].Kind)
	}
	for i, op := range t.ops {
		if op.Kind == KindSource && OpID(i) != src {
			return fmt.Errorf("%w: %q is a source but has input edges", ErrBadKind, op.Name)
		}
		if op.Kind == KindSink && len(t.out[i]) > 0 {
			return fmt.Errorf("%w: %q is a sink but has output edges", ErrBadKind, op.Name)
		}
	}
	if _, err := t.TopologicalOrder(); err != nil {
		return err
	}
	// Reachability from the source.
	seen := make([]bool, t.Len())
	stack := []OpID{src}
	seen[src] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.out[v] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnreachable, t.ops[i].Name)
		}
	}
	// Probability conservation on output edges.
	for i := range t.ops {
		if len(t.out[i]) == 0 {
			continue
		}
		sum := 0.0
		for _, e := range t.out[i] {
			sum += e.Prob
		}
		if math.Abs(sum-1) > probTolerance {
			return fmt.Errorf("%w: %q outputs sum to %v", ErrBadProbability, t.ops[i].Name, sum)
		}
	}
	return nil
}

// Source returns the unique source vertex. It assumes the topology has been
// validated; on malformed graphs it returns the first root or -1.
func (t *Topology) Source() OpID {
	srcs := t.Sources()
	if len(srcs) == 0 {
		return -1
	}
	return srcs[0]
}

// AddFictitiousSource converts a multi-source topology into a rooted one by
// inserting a zero-cost fan-out vertex ahead of all current roots, as
// suggested in Section 3.1 of the paper. Each original root keeps producing
// at its own service rate: the fictitious source's rate is the sum of the
// root rates and its output probabilities are proportional to them, so the
// per-root arrival rates are preserved. Original roots are re-labeled as
// stateful pass-through operators (they cannot be replicated).
//
// The transform returns the ID of the inserted source. Calling it on a
// topology that already has a single source is an error.
func (t *Topology) AddFictitiousSource(name string) (OpID, error) {
	roots := t.Sources()
	if len(roots) < 2 {
		return -1, fmt.Errorf("fictitious source: topology has %d roots, need >= 2", len(roots))
	}
	total := 0.0
	for _, r := range roots {
		total += t.ops[r].Rate()
	}
	if total <= 0 {
		return -1, errors.New("fictitious source: roots have zero total rate")
	}
	src, err := t.AddOperator(Operator{
		Name:        name,
		Kind:        KindSource,
		ServiceTime: 1 / total,
	})
	if err != nil {
		return -1, err
	}
	for _, r := range roots {
		if t.ops[r].Kind == KindSource {
			t.ops[r].Kind = KindStateful
		}
		if err := t.Connect(src, r, t.ops[r].Rate()/total); err != nil {
			return -1, err
		}
	}
	return src, nil
}
