package core

// LatencyModel selects the queueing approximation used per operator.
type LatencyModel int

const (
	// MM1 models each operator as an M/M/1 station: exponential service,
	// Poisson-ish arrivals. Wq = rho/(mu - lambda). This matches the
	// simulator's default exponential service law.
	MM1 LatencyModel = iota + 1
	// MD1 models deterministic service: Wq = rho / (2*mu*(1 - rho)),
	// half the M/M/1 queueing delay.
	MD1
)

// LatencyEstimate is the extension of the steady-state model to response
// times: an open-queueing-network approximation layered on the
// backpressure-corrected rates of Algorithm 1. The paper's models stop at
// throughput; latency is the natural next output of the same analysis and
// is validated against the simulator's measured waiting times.
type LatencyEstimate struct {
	// Wait is the predicted mean queueing delay per operator in seconds
	// (time spent in the input buffer before service).
	Wait []float64
	// Sojourn is Wait plus the mean service time, per operator.
	Sojourn []float64
	// EndToEnd is the expected source-to-sink latency of one item: the
	// path-probability-weighted sum of the sojourn times it traverses.
	EndToEnd float64
	// Saturated lists operators at utilization ~1, whose queueing delay
	// is buffer-bound rather than load-bound: for them Wait reports the
	// delay of a full buffer of the given capacity.
	Saturated []OpID
}

// EstimateLatency predicts per-operator and end-to-end latencies from a
// steady-state analysis. bufferCapacity bounds the delay of saturated
// operators (a full bounded mailbox holds capacity items, so an arriving
// item waits about capacity service times); it defaults to 64, matching
// the runtime and simulator defaults.
func EstimateLatency(t *Topology, a *Analysis, model LatencyModel, bufferCapacity int) (*LatencyEstimate, error) {
	if a == nil {
		var err error
		a, err = SteadyState(t)
		if err != nil {
			return nil, err
		}
	}
	if bufferCapacity <= 0 {
		bufferCapacity = 64
	}
	if model == 0 {
		model = MM1
	}
	est := &LatencyEstimate{
		Wait:    make([]float64, t.Len()),
		Sojourn: make([]float64, t.Len()),
	}
	for i := 0; i < t.Len(); i++ {
		op := t.Op(OpID(i))
		mu := op.Rate() * float64(maxInt(a.Replicas[i], 1))
		lambda := a.Lambda[i]
		rho := a.Rho[i]
		service := op.ServiceTime
		var wait float64
		switch {
		case op.Kind == KindSource:
			wait = 0
		case rho >= 1-rhoTolerance:
			// Saturated: the bounded mailbox stays full; an arriving item
			// waits for a full buffer to drain.
			wait = float64(bufferCapacity) * service
			est.Saturated = append(est.Saturated, OpID(i))
		case model == MD1:
			wait = rho / (2 * mu * (1 - rho))
		default:
			wait = rho / (mu - lambda)
		}
		est.Wait[i] = wait
		est.Sojourn[i] = wait + service
	}

	// End-to-end: expected number of visits to each operator per source
	// item (the fusion DP generalized to the whole graph), weighting each
	// operator's sojourn.
	order, err := t.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	visits := make([]float64, t.Len())
	visits[t.Source()] = 1
	for _, v := range order {
		w := visits[v]
		if w == 0 {
			continue
		}
		est.EndToEnd += w * est.Sojourn[v]
		out := w * t.Op(v).Gain()
		for _, e := range t.Out(v) {
			visits[e.To] += out * e.Prob
		}
	}
	return est, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
