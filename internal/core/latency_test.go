package core

import (
	"math"
	"testing"
)

func TestEstimateLatencyMM1Formula(t *testing.T) {
	// Single stage at rho = 0.5: Wq = rho/(mu - lambda) = 0.5/(1000-500).
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.002})  // 500/s
	st := topo.MustAddOperator(Operator{Name: "st", Kind: KindStateless, ServiceTime: 0.001}) // 1000/s
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, st, 1)
	topo.MustConnect(st, sink, 1)

	est, err := EstimateLatency(topo, nil, MM1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 / (1000 - 500)
	approx(t, "Wq", est.Wait[st], want, 1e-12)
	approx(t, "sojourn", est.Sojourn[st], want+0.001, 1e-12)
	if est.Wait[src] != 0 {
		t.Errorf("source wait = %v, want 0", est.Wait[src])
	}
	if len(est.Saturated) != 0 {
		t.Errorf("saturated = %v, want none", est.Saturated)
	}
	// End-to-end covers all three sojourns once.
	wantE2E := est.Sojourn[src] + est.Sojourn[st] + est.Sojourn[sink]
	approx(t, "end-to-end", est.EndToEnd, wantE2E, 1e-12)
}

func TestEstimateLatencyMD1HalvesQueueing(t *testing.T) {
	topo, _ := mustPipeline(t, 0.002, 0.001, 0.0001)
	mm1, err := EstimateLatency(topo, nil, MM1, 0)
	if err != nil {
		t.Fatal(err)
	}
	md1, err := EstimateLatency(topo, nil, MD1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < topo.Len(); i++ {
		if mm1.Wait[i] == 0 {
			continue
		}
		ratio := md1.Wait[i] / mm1.Wait[i]
		if math.Abs(ratio-0.5) > 1e-9 {
			t.Errorf("op %d: MD1/MM1 wait ratio = %v, want 0.5", i, ratio)
		}
	}
}

func TestEstimateLatencySaturated(t *testing.T) {
	// Bottleneck stage: rho = 1 after correction; wait is buffer-bound.
	topo, ids := mustPipeline(t, 0.001, 0.004, 0.0001)
	est, err := EstimateLatency(topo, nil, MM1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Saturated) != 1 || est.Saturated[0] != ids[1] {
		t.Fatalf("saturated = %v, want [%d]", est.Saturated, ids[1])
	}
	approx(t, "saturated wait", est.Wait[ids[1]], 32*0.004, 1e-12)
}

func TestEstimateLatencyMonotoneInLoad(t *testing.T) {
	// Raising the source rate (toward the bottleneck) must not lower any
	// operator's predicted waiting time.
	slow, _ := mustPipeline(t, 0.004, 0.001, 0.0001)
	fast, _ := mustPipeline(t, 0.002, 0.001, 0.0001)
	a, err := EstimateLatency(slow, nil, MM1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateLatency(fast, nil, MM1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if b.Wait[i] < a.Wait[i]-1e-12 {
			t.Errorf("op %d: higher load lowered wait %v -> %v", i, a.Wait[i], b.Wait[i])
		}
	}
}

func TestEstimateLatencyReplicasReduceWait(t *testing.T) {
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.001})
	hot := topo.MustAddOperator(Operator{Name: "hot", Kind: KindStateless, ServiceTime: 0.0009})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, hot, 1)
	topo.MustConnect(hot, sink, 1)

	base, err := EstimateLatency(topo, nil, MM1, 0)
	if err != nil {
		t.Fatal(err)
	}
	withReps, err := SteadyStateWithReplicas(topo, []int{1, 2, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateLatency(topo, withReps, MM1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Wait[hot] >= base.Wait[hot] {
		t.Errorf("replication did not reduce wait: %v -> %v", base.Wait[hot], est.Wait[hot])
	}
}
