package core

import (
	"math/rand"
	"testing"
)

func TestSteadyStateSheddingPipeline(t *testing.T) {
	// Source 1000/s into a 250/s stage: shedding drops 750/s there and the
	// sink receives 250/s, while the source keeps running at full speed.
	topo, ids := mustPipeline(t, 0.001, 0.004, 0.0001)
	a, err := SteadyStateShedding(topo)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "source rate", a.SourceRate, 1000, 1e-9)
	approx(t, "dropped at stage", a.Dropped[ids[1]], 750, 1e-6)
	approx(t, "sink rate", a.SinkRate, 250, 1e-6)
	approx(t, "loss fraction", a.LossFraction, 0.75, 1e-9)
}

func TestSteadyStateSheddingNoBottleneck(t *testing.T) {
	topo, _ := mustPipeline(t, 0.010, 0.002, 0.001)
	a, err := SteadyStateShedding(topo)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "loss", a.LossFraction, 0, 1e-12)
	for i, d := range a.Dropped {
		if d != 0 {
			t.Errorf("op %d dropped %v without a bottleneck", i, d)
		}
	}
}

func TestSheddingVsBackpressureDelivery(t *testing.T) {
	// Both semantics deliver the same surviving throughput on a simple
	// chain (the bottleneck caps the flow either way); shedding just pays
	// for it with discarded items while backpressure throttles upstream.
	topo, _ := mustPipeline(t, 0.001, 0.004, 0.0001)
	bp, err := SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	shed, err := SteadyStateShedding(topo)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "delivered", shed.SinkRate, bp.SinkRate, 1e-6)
	if shed.SourceRate <= bp.SourceRate {
		t.Errorf("shedding source %v should exceed throttled source %v",
			shed.SourceRate, bp.SourceRate)
	}
}

func TestSheddingDownstreamOfSplitCanBeatBackpressure(t *testing.T) {
	// Where backpressure throttles the whole source because one branch is
	// saturated, shedding keeps the other branch at full rate: delivered
	// throughput can exceed the backpressure steady state, at the price
	// of losses on the hot branch. This is the trade-off Section 2
	// describes.
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.001})
	hot := topo.MustAddOperator(Operator{Name: "hot", Kind: KindStateful, ServiceTime: 0.004})
	cold := topo.MustAddOperator(Operator{Name: "cold", Kind: KindStateful, ServiceTime: 0.0005})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, hot, 0.5)
	topo.MustConnect(src, cold, 0.5)
	topo.MustConnect(hot, sink, 1)
	topo.MustConnect(cold, sink, 1)

	bp, err := SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	shed, err := SteadyStateShedding(topo)
	if err != nil {
		t.Fatal(err)
	}
	if shed.SinkRate <= bp.SinkRate {
		t.Errorf("shedding delivered %v, backpressure %v; expected shedding to win on the split",
			shed.SinkRate, bp.SinkRate)
	}
	if shed.LossFraction <= 0 {
		t.Error("no loss reported despite a saturated branch")
	}
}

// TestSheddingProperties on random DAGs: losses are non-negative, the
// delivered rate never exceeds the loss-free flow, and with no saturated
// operator the two semantics agree.
func TestSheddingProperties(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed + 91000))
		topo := randomDAG(rng, 16)
		shed, err := SteadyStateShedding(topo)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if shed.LossFraction < 0 || shed.LossFraction > 1 {
			t.Fatalf("seed %d: loss fraction %v", seed, shed.LossFraction)
		}
		for i, d := range shed.Dropped {
			if d < -1e-9 {
				t.Fatalf("seed %d: negative drop at %d", seed, i)
			}
		}
		bp, err := SteadyState(topo)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bp.Bottlenecked() {
			// No saturation: identical steady states.
			if shed.LossFraction > 1e-9 {
				t.Fatalf("seed %d: loss without bottleneck", seed)
			}
			for i := range shed.Delta {
				if diff := shed.Delta[i] - bp.Delta[i]; diff > 1e-6 || diff < -1e-6 {
					t.Fatalf("seed %d: delta mismatch at %d", seed, i)
				}
			}
		}
	}
}
