package core_test

import (
	"fmt"

	"spinstreams/internal/core"
)

// ExampleSteadyState demonstrates Algorithm 1: the slow middle stage caps
// the throughput at its service rate, and the source departure rate is
// corrected for backpressure.
func ExampleSteadyState() {
	t := core.NewTopology()
	src := t.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	slow := t.MustAddOperator(core.Operator{Name: "slow", Kind: core.KindStateful, ServiceTime: 0.004})
	sink := t.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0001})
	t.MustConnect(src, slow, 1)
	t.MustConnect(slow, sink, 1)

	a, err := core.SteadyState(t)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("throughput: %.0f items/s\n", a.Throughput())
	fmt.Printf("bottleneck: %s (rho = %.2f)\n", t.Op(a.Limiting[0]).Name, a.Rho[slow])
	// Output:
	// throughput: 250 items/s
	// bottleneck: slow (rho = 1.00)
}

// ExampleEliminateBottlenecks demonstrates Algorithm 2: the stateless
// bottleneck gets ceil(rho) = 4 replicas and the topology reaches the
// source's generation rate.
func ExampleEliminateBottlenecks() {
	t := core.NewTopology()
	src := t.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	hot := t.MustAddOperator(core.Operator{Name: "hot", Kind: core.KindStateless, ServiceTime: 0.004})
	sink := t.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0001})
	t.MustConnect(src, hot, 1)
	t.MustConnect(hot, sink, 1)

	res, err := core.EliminateBottlenecks(t, core.FissionOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("replicas of hot: %d\n", res.Analysis.Replicas[hot])
	fmt.Printf("throughput: %.0f items/s\n", res.Analysis.Throughput())
	// Output:
	// replicas of hot: 4
	// throughput: 1000 items/s
}

// ExampleFuse demonstrates Algorithm 3 on the paper's Section 5.4
// walk-through: fusing the three underutilized operators keeps the
// predicted throughput at 1000 tuples/s.
func ExampleFuse() {
	t, sub := core.PaperExampleTopology(core.PaperExampleTable1)
	fused, report, err := core.Fuse(t, sub, "F")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("operators: %d -> %d\n", t.Len(), fused.Len())
	fmt.Printf("fused service time: %.2f ms\n", report.ServiceTime*1e3)
	fmt.Printf("introduces bottleneck: %v\n", report.IntroducesBottleneck)
	// Output:
	// operators: 6 -> 4
	// fused service time: 2.78 ms
	// introduces bottleneck: false
}

// ExampleEstimateLatency demonstrates the latency extension: M/M/1 waiting
// times on top of the steady-state rates.
func ExampleEstimateLatency() {
	t := core.NewTopology()
	src := t.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.002})
	mid := t.MustAddOperator(core.Operator{Name: "mid", Kind: core.KindStateless, ServiceTime: 0.001})
	sink := t.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0001})
	t.MustConnect(src, mid, 1)
	t.MustConnect(mid, sink, 1)

	est, err := core.EstimateLatency(t, nil, core.MM1, 64)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("mid wait: %.1f ms\n", est.Wait[mid]*1e3)
	// Output:
	// mid wait: 1.0 ms
}
