package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestFusionServiceTimePaperTable1(t *testing.T) {
	topo, sub := PaperExampleTopology(PaperExampleTable1)
	front, err := ValidateSubgraph(topo, sub)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Op(front).Name != "op3" {
		t.Fatalf("front-end = %s, want op3", topo.Op(front).Name)
	}
	st, exits, err := FusionServiceTime(topo, sub, front)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 2.80 ms (our exact reconstruction gives 2.7833 ms).
	approx(t, "fused service time", st*1e3, 2.7833, 1e-3)
	// Unit selectivity: exactly one item leaves per item entering.
	total := 0.0
	for _, w := range exits {
		total += w
	}
	approx(t, "exit volume", total, 1, 1e-12)
	// Both exit flows head to op6 (0.5 via op4, 0.5 via op5).
	if len(exits) != 1 {
		t.Fatalf("exits = %v, want a single target", exits)
	}
}

func TestFusionServiceTimePaperTable2(t *testing.T) {
	topo, sub := PaperExampleTopology(PaperExampleTable2)
	front, _ := ValidateSubgraph(topo, sub)
	st, _, err := FusionServiceTime(topo, sub, front)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 4.42 ms (exact reconstruction: 4.40 ms).
	approx(t, "fused service time", st*1e3, 4.40, 1e-3)
}

func TestFusePaperTable1(t *testing.T) {
	topo, sub := PaperExampleTopology(PaperExampleTable1)
	fused, report, err := Fuse(topo, sub, "F")
	if err != nil {
		t.Fatal(err)
	}
	if report.IntroducesBottleneck {
		t.Error("Table 1 fusion flagged as bottleneck, want feasible")
	}
	approx(t, "throughput before", report.ThroughputBefore, 1000, 1e-6)
	approx(t, "throughput after", report.ThroughputAfter, 1000, 1e-6)
	// Fused topology has 4 operators: op1, op2, F, op6.
	if fused.Len() != 4 {
		t.Fatalf("fused topology has %d operators, want 4", fused.Len())
	}
	fid, ok := fused.Lookup("F")
	if !ok {
		t.Fatal("fused operator not found")
	}
	// Table 1: rho_F = 0.84 (ours: 0.835).
	approx(t, "rho F", report.After.Rho[fid], 0.835, 1e-3)
	if got := fused.Op(fid).Kind; got != KindStateful {
		t.Errorf("fused kind = %v, want stateful", got)
	}
	if len(fused.Op(fid).Fused) != 3 {
		t.Errorf("Fused members = %v, want 3 names", fused.Op(fid).Fused)
	}
	if report.Degradation() != 0 {
		t.Errorf("Degradation = %v, want 0", report.Degradation())
	}
	if err := fused.Validate(); err != nil {
		t.Fatalf("fused topology invalid: %v", err)
	}
}

func TestFusePaperTable2(t *testing.T) {
	topo, sub := PaperExampleTopology(PaperExampleTable2)
	_, report, err := Fuse(topo, sub, "F")
	if err != nil {
		t.Fatal(err)
	}
	if !report.IntroducesBottleneck {
		t.Error("Table 2 fusion not flagged as bottleneck")
	}
	approx(t, "throughput before", report.ThroughputBefore, 1000, 1e-6)
	// Paper predicts 760 tuples/s (exact reconstruction: 757.6).
	approx(t, "throughput after", report.ThroughputAfter, 757.6, 0.5)
	// ~24% predicted degradation (paper reports 20% with its rounding).
	if d := report.Degradation(); d < 0.15 || d > 0.30 {
		t.Errorf("Degradation = %v, want ~0.2-0.25", d)
	}
}

func TestFusePaperTable2Rates(t *testing.T) {
	// Check the After rows of Table 2: delta^-1 = [1.33, 1.90, 4.42, 0.2->1.33].
	topo, sub := PaperExampleTopology(PaperExampleTable2)
	fused, report, err := Fuse(topo, sub, "F")
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) OpID {
		id, ok := fused.Lookup(name)
		if !ok {
			t.Fatalf("operator %s missing", name)
		}
		return id
	}
	a := report.After
	approx(t, "delta op1 (ms^-1)", 1e3/a.Delta[get("op1")], 1.32, 0.02)
	approx(t, "delta op2 (ms^-1)", 1e3/a.Delta[get("op2")], 1.886, 0.02)
	approx(t, "delta F (ms^-1)", 1e3/a.Delta[get("F")], 4.40, 0.02)
	approx(t, "delta op6 (ms^-1)", 1e3/a.Delta[get("op6")], 1.32, 0.02)
}

func TestFusionPathsMatchesDP(t *testing.T) {
	// The paper-literal path enumeration and the DP must agree on
	// unit-selectivity subgraphs.
	topo, sub := PaperExampleTopology(PaperExampleTable1)
	front, _ := ValidateSubgraph(topo, sub)
	dp, _, err := FusionServiceTime(topo, sub, front)
	if err != nil {
		t.Fatal(err)
	}
	paths := FusionServiceTimeByPaths(topo, sub, front)
	approx(t, "paths vs dp", paths, dp, 1e-12)
}

func TestFusionPathsMatchesDPRandom(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed + 9000))
		topo := randomDAG(rng, 14)
		for i := 0; i < topo.Len(); i++ {
			topo.Op(OpID(i)).OutputSelectivity = 0 // unit selectivity
			topo.Op(OpID(i)).InputSelectivity = 0
		}
		dom, err := dominators(topo)
		if err != nil {
			t.Fatal(err)
		}
		src := topo.Source()
		for f := 0; f < topo.Len(); f++ {
			if OpID(f) == src {
				continue
			}
			members := dominatedSet(dom, OpID(f))
			if len(members) < 2 {
				continue
			}
			front, err := ValidateSubgraph(topo, members)
			if err != nil {
				continue
			}
			dp, _, err := FusionServiceTime(topo, members, front)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			paths := FusionServiceTimeByPaths(topo, members, front)
			if math.Abs(dp-paths) > 1e-9*math.Max(dp, paths) {
				t.Fatalf("seed %d front %d: dp %v != paths %v", seed, f, dp, paths)
			}
		}
	}
}

func TestValidateSubgraphErrors(t *testing.T) {
	topo, sub := PaperExampleTopology(PaperExampleTable1)
	op2, _ := topo.Lookup("op2")
	op4, _ := topo.Lookup("op4")
	op5, _ := topo.Lookup("op5")
	op6, _ := topo.Lookup("op6")
	src, _ := topo.Lookup("op1")

	t.Run("too small", func(t *testing.T) {
		if _, err := ValidateSubgraph(topo, []OpID{op4}); !errors.Is(err, ErrFusionTooSmall) {
			t.Errorf("got %v, want ErrFusionTooSmall", err)
		}
	})
	t.Run("contains source", func(t *testing.T) {
		if _, err := ValidateSubgraph(topo, []OpID{src, op2}); !errors.Is(err, ErrFusionSource) {
			t.Errorf("got %v, want ErrFusionSource", err)
		}
	})
	t.Run("two front ends", func(t *testing.T) {
		// op2 and op4 both receive external input and neither feeds the other.
		if _, err := ValidateSubgraph(topo, []OpID{op2, op4}); !errors.Is(err, ErrFusionFrontEnd) {
			t.Errorf("got %v, want ErrFusionFrontEnd", err)
		}
	})
	t.Run("two front ends via shared downstream", func(t *testing.T) {
		// op5 receives from op3 outside the pair, op4 from op1 via op3:
		// both members have external inputs.
		if _, err := ValidateSubgraph(topo, []OpID{op4, op5}); !errors.Is(err, ErrFusionFrontEnd) {
			t.Errorf("got %v, want ErrFusionFrontEnd", err)
		}
	})
	t.Run("valid pair", func(t *testing.T) {
		op3, _ := topo.Lookup("op3")
		front, err := ValidateSubgraph(topo, []OpID{op3, op4})
		if err != nil || front != op3 {
			t.Errorf("got front %v, err %v; want op3, nil", front, err)
		}
	})
	t.Run("ok including sink", func(t *testing.T) {
		front, err := ValidateSubgraph(topo, []OpID{op5, op6})
		// op6 receives from op2 and op4 outside the subgraph: two external
		// feeders but on two members -> two front-ends -> invalid.
		if err == nil {
			t.Errorf("got front %v, want error (op6 also receives external input)", front)
		}
	})
	_ = sub
}

func TestValidateSubgraphNonContiguous(t *testing.T) {
	// Fusing {b, d} with b -> c -> d outside would contract to F -> c -> F;
	// the front-end constraint already rejects it (d receives external
	// input from c), which is why contraction acyclicity is implied for
	// subgraphs that pass the other checks on a valid DAG.
	topo := NewTopology()
	a := topo.MustAddOperator(Operator{Name: "a", Kind: KindSource, ServiceTime: 1})
	b := topo.MustAddOperator(Operator{Name: "b", Kind: KindStateless, ServiceTime: 1})
	c := topo.MustAddOperator(Operator{Name: "c", Kind: KindStateless, ServiceTime: 1})
	d := topo.MustAddOperator(Operator{Name: "d", Kind: KindSink, ServiceTime: 1})
	topo.MustConnect(a, b, 1)
	topo.MustConnect(b, c, 0.5)
	topo.MustConnect(b, d, 0.5)
	topo.MustConnect(c, d, 1)
	if _, err := ValidateSubgraph(topo, []OpID{b, d}); err == nil {
		t.Error("non-contiguous subgraph accepted")
	}
}

func TestFuseWholeTailIntoSink(t *testing.T) {
	// Fusing a subgraph that includes all sinks yields a sink meta-operator.
	topo, _ := mustPipeline(t, 0.01, 0.001, 0.001)
	ids := []OpID{1, 2}
	fused, report, err := Fuse(topo, ids, "tail")
	if err != nil {
		t.Fatal(err)
	}
	fid, _ := fused.Lookup("tail")
	if got := fused.Op(fid).Kind; got != KindSink {
		t.Errorf("fused kind = %v, want sink", got)
	}
	approx(t, "fused service time", report.ServiceTime, 0.002, 1e-12)
	if err := fused.Validate(); err != nil {
		t.Fatal(err)
	}
	approx(t, "throughput preserved", report.ThroughputAfter, 100, 1e-9)
}

func TestFuseWithSelectivity(t *testing.T) {
	// A filter (out-sel 0.5) followed by a map: the meta-operator's output
	// selectivity is 0.5 and the map runs only for surviving items.
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 0.001})
	fil := topo.MustAddOperator(Operator{
		Name: "filter", Kind: KindStateless, ServiceTime: 0.0002, OutputSelectivity: 0.5,
	})
	mp := topo.MustAddOperator(Operator{Name: "map", Kind: KindStateless, ServiceTime: 0.0004})
	sink := topo.MustAddOperator(Operator{Name: "sink", Kind: KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, fil, 1)
	topo.MustConnect(fil, mp, 1)
	topo.MustConnect(mp, sink, 1)

	fused, report, err := Fuse(topo, []OpID{fil, mp}, "FM")
	if err != nil {
		t.Fatal(err)
	}
	// Service: 0.0002 + 0.5*0.0004 = 0.0004 per input item.
	approx(t, "fused service time", report.ServiceTime, 0.0004, 1e-12)
	approx(t, "fused out selectivity", report.OutputSelectivity, 0.5, 1e-12)
	fid, _ := fused.Lookup("FM")
	if got := fused.Op(fid).OutputSelectivity; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("stored selectivity = %v, want 0.5", got)
	}
	a, err := SteadyState(fused)
	if err != nil {
		t.Fatal(err)
	}
	sid, _ := fused.Lookup("sink")
	approx(t, "sink arrival", a.Lambda[sid], 500, 1e-9)
}

func TestFusionCandidatesPaper(t *testing.T) {
	topo, sub := PaperExampleTopology(PaperExampleTable1)
	cands, err := FusionCandidates(topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no fusion candidates found")
	}
	// The {op3, op4, op5} subgraph must be among the candidates.
	found := false
	for _, c := range cands {
		if len(c.Members) == len(sub) {
			same := true
			for i := range sub {
				if c.Members[i] != sub[i] {
					same = false
				}
			}
			if same {
				found = true
				if c.FusedUtilization > 1 {
					t.Errorf("candidate utilization = %v, want <= 1", c.FusedUtilization)
				}
			}
		}
	}
	if !found {
		t.Errorf("paper subgraph not suggested; candidates = %+v", cands)
	}
	// Ranking is ascending by utilization.
	for i := 1; i < len(cands); i++ {
		if cands[i].FusedUtilization < cands[i-1].FusedUtilization {
			t.Errorf("candidates not sorted at %d", i)
		}
	}
}

func TestFusionCandidatesSkipBottleneck(t *testing.T) {
	// In the Table 2 variant the {3,4,5} fusion would saturate: it must
	// not be suggested.
	topo, sub := PaperExampleTopology(PaperExampleTable2)
	cands, err := FusionCandidates(topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if len(c.Members) == 3 && c.Members[0] == sub[0] {
			t.Errorf("bottleneck-introducing candidate suggested: %+v", c)
		}
	}
}

func TestFuseInvalidInputs(t *testing.T) {
	topo, _ := PaperExampleTopology(PaperExampleTable1)
	if _, _, err := Fuse(topo, []OpID{1}, "x"); err == nil {
		t.Error("Fuse with one member succeeded")
	}
	if _, _, err := Fuse(topo, []OpID{0, 1}, "x"); err == nil {
		t.Error("Fuse including the source succeeded")
	}
}
