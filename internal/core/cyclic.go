package core

import (
	"errors"
	"fmt"
	"math"
)

// Cyclic-analysis errors.
var (
	// ErrDivergentCycle reports a feedback loop whose gain-weighted
	// routing returns at least as much traffic as it consumes, so the
	// traffic equations have no finite solution.
	ErrDivergentCycle = errors.New("cyclic steady state: feedback traffic does not converge")
)

// ValidateCyclic checks the relaxed assumptions of the cyclic analysis:
// non-empty, a single source of kind source, every vertex reachable from
// it, and output probabilities summing to one. Unlike Validate, directed
// cycles are allowed.
func (t *Topology) ValidateCyclic() error {
	if t.Len() == 0 {
		return ErrEmpty
	}
	srcs := t.Sources()
	switch {
	case len(srcs) == 0:
		return ErrNoSource
	case len(srcs) > 1:
		return fmt.Errorf("%w: %d roots", ErrMultipleSources, len(srcs))
	}
	src := srcs[0]
	if t.ops[src].Kind != KindSource {
		return fmt.Errorf("%w: root %q has kind %s, want source", ErrBadKind, t.ops[src].Name, t.ops[src].Kind)
	}
	seen := make([]bool, t.Len())
	stack := []OpID{src}
	seen[src] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.out[v] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnreachable, t.ops[i].Name)
		}
	}
	for i := range t.ops {
		if len(t.out[i]) == 0 {
			continue
		}
		sum := 0.0
		for _, e := range t.out[i] {
			sum += e.Prob
		}
		if math.Abs(sum-1) > probTolerance {
			return fmt.Errorf("%w: %q outputs sum to %v", ErrBadProbability, t.ops[i].Name, sum)
		}
	}
	return nil
}

// SteadyStateCyclic extends the steady-state analysis to topologies with
// feedback edges — the remaining generality the paper names as future work
// (Section 7, together with multiple sources, which AddFictitiousSource
// covers). The traffic equations lambda = gamma + G(lambda) are solved by
// fixed-point iteration (they converge whenever every cycle's
// gain-weighted routing product is below one — e.g. retry loops that
// re-inject a fraction p < 1 of the items); the binding capacity
// constraint then scales the source exactly as in the single-pass acyclic
// analysis, which is exact because the fixed point is linear in the source
// rate.
func SteadyStateCyclic(t *Topology) (*Analysis, error) {
	if err := t.ValidateCyclic(); err != nil {
		return nil, err
	}
	src := t.Source()
	srcOp := t.Op(src)

	// Demand pass: unit source emission, iterate the traffic equations.
	demand, err := t.solveTraffic(src, 1)
	if err != nil {
		return nil, err
	}
	factor := 1.0
	var limiting []OpID
	full := srcOp.Rate() * srcOp.Gain()
	for i := 0; i < t.Len(); i++ {
		if OpID(i) == src {
			continue
		}
		if load := full * demand[i]; load > t.Op(OpID(i)).Rate()*(1+rhoTolerance) {
			f := t.Op(OpID(i)).Rate() / load
			switch {
			case f < factor-rhoTolerance:
				factor = f
				limiting = []OpID{OpID(i)}
			case f <= factor+rhoTolerance:
				limiting = append(limiting, OpID(i))
			}
		}
	}

	a := newAnalysis(t.Len())
	delta1 := full * factor
	a.Delta[src] = delta1
	a.Rho[src] = factor
	a.Lambda[src] = delta1 / srcOp.Gain()
	for i := 0; i < t.Len(); i++ {
		if OpID(i) == src {
			continue
		}
		lambda := delta1 * demand[i]
		mu := t.Op(OpID(i)).Rate()
		a.Lambda[i] = lambda
		a.Rho[i] = lambda / mu
		a.Delta[i] = math.Min(lambda, mu) * t.Op(OpID(i)).Gain()
	}
	a.Limiting = limiting
	a.finish(t)
	return a, nil
}

// solveTraffic iterates lambda_i = sum_j delta_j p(j,i) with the source
// pinned at sourceRate, returning the per-vertex arrival rates. It fails
// when feedback amplifies traffic without bound.
func (t *Topology) solveTraffic(src OpID, sourceRate float64) ([]float64, error) {
	n := t.Len()
	lambda := make([]float64, n)
	const (
		maxIters = 10000
		tol      = 1e-12
	)
	srcOut := sourceRate * t.Op(src).Gain()
	for iter := 0; iter < maxIters; iter++ {
		next := make([]float64, n)
		for j := 0; j < n; j++ {
			var out float64
			if OpID(j) == src {
				out = srcOut
			} else {
				out = lambda[j] * t.Op(OpID(j)).Gain()
			}
			for _, e := range t.out[j] {
				next[e.To] += out * e.Prob
			}
		}
		maxDiff, maxVal := 0.0, 0.0
		for i := range next {
			d := math.Abs(next[i] - lambda[i])
			if d > maxDiff {
				maxDiff = d
			}
			if next[i] > maxVal {
				maxVal = next[i]
			}
		}
		lambda = next
		if maxDiff <= tol*(1+maxVal) {
			return lambda, nil
		}
		if maxVal > 1e15*sourceRate {
			return nil, ErrDivergentCycle
		}
	}
	return nil, ErrDivergentCycle
}
