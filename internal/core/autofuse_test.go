package core

import (
	"math/rand"
	"testing"
)

func TestAutoFusePaperExample(t *testing.T) {
	topo, _ := PaperExampleTopology(PaperExampleTable1)
	res, err := AutoFuse(topo, AutoFuseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no fusion applied on a topology with underutilized operators")
	}
	if res.OperatorsAfter >= res.OperatorsBefore {
		t.Errorf("operators %d -> %d, want a reduction", res.OperatorsBefore, res.OperatorsAfter)
	}
	if res.ThroughputAfter < res.ThroughputBefore*(1-1e-9) {
		t.Errorf("throughput degraded %v -> %v", res.ThroughputBefore, res.ThroughputAfter)
	}
	if err := res.Topology.Validate(); err != nil {
		t.Fatalf("final topology invalid: %v", err)
	}
}

func TestAutoFuseTable2RejectsBottleneck(t *testing.T) {
	// In the slow variant the {3,4,5} fusion would saturate: AutoFuse must
	// not apply it (it may still apply other, safe fusions).
	topo, _ := PaperExampleTopology(PaperExampleTable2)
	res, err := AutoFuse(topo, AutoFuseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputAfter < res.ThroughputBefore*(1-1e-9) {
		t.Errorf("throughput degraded %v -> %v", res.ThroughputBefore, res.ThroughputAfter)
	}
	for _, step := range res.Steps {
		if step.Utilization > 1 {
			t.Errorf("step %v saturates: rho %v", step.MemberNames, step.Utilization)
		}
	}
}

func TestAutoFuseMaxRounds(t *testing.T) {
	topo, _ := PaperExampleTopology(PaperExampleTable1)
	res, err := AutoFuse(topo, AutoFuseOptions{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) > 1 {
		t.Errorf("applied %d rounds, want <= 1", len(res.Steps))
	}
}

func TestAutoFuseNoCandidates(t *testing.T) {
	// A saturated pipeline has no safe fusion; AutoFuse must be a no-op.
	topo, ids := mustPipeline(t, 0.001, 0.001, 0.001)
	res, err := AutoFuse(topo, AutoFuseOptions{MaxUtilization: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 0 {
		t.Errorf("steps = %v, want none", res.Steps)
	}
	if res.OperatorsAfter != len(ids) {
		t.Errorf("operator count changed without fusions")
	}
}

// TestAutoFuseNeverDegrades: on random topologies, automatic fusion must
// preserve the predicted throughput and keep the topology valid.
func TestAutoFuseNeverDegrades(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed + 31000))
		topo := randomDAG(rng, 15)
		base, err := SteadyState(topo)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := AutoFuse(topo, AutoFuseOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.ThroughputAfter < base.Throughput()*(1-1e-6) {
			t.Fatalf("seed %d: throughput %v -> %v", seed, base.Throughput(), res.ThroughputAfter)
		}
		if err := res.Topology.Validate(); err != nil {
			t.Fatalf("seed %d: invalid result: %v", seed, err)
		}
		if res.OperatorsAfter > res.OperatorsBefore {
			t.Fatalf("seed %d: operators grew", seed)
		}
	}
}

// TestOptimizeThenAutoFuse: composing the two optimizations — fission to
// remove bottlenecks, then fusion to coarsen the underutilized remainder —
// must preserve the optimized predicted throughput.
func TestOptimizeThenAutoFuse(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed + 64000))
		topo := randomDAG(rng, 14)
		fis, err := EliminateBottlenecks(topo, FissionOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := AutoFuse(topo, AutoFuseOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Re-optimize the fused topology: fission must still reach at
		// least the throughput of the original fission pass minus the
		// capacity lost by freezing fused members as stateful.
		fis2, err := EliminateBottlenecks(res.Topology, FissionOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// AutoFuse only merges operators whose fused utilization stays
		// below 0.9 at the *unoptimized* rates; after fission raises the
		// rates the meta-operator may bind, but never below the plain
		// topology's throughput.
		base, err := SteadyState(topo)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fis2.Analysis.Throughput() < base.Throughput()*(1-1e-6) {
			t.Fatalf("seed %d: fused+fissioned %v below unoptimized %v",
				seed, fis2.Analysis.Throughput(), base.Throughput())
		}
		_ = fis
	}
}
