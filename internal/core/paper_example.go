package core

// PaperExampleVariant selects one of the two service-time assignments used
// in Section 5.4 of the paper for the six-operator fusion example.
type PaperExampleVariant int

const (
	// PaperExampleTable1 is the fast variant (fusion is feasible and does
	// not impair performance): mu^-1 = [1.0, 1.2, 0.7, 2.0, 1.5, 0.2] ms.
	PaperExampleTable1 PaperExampleVariant = iota + 1
	// PaperExampleTable2 is the slow variant (fusion introduces a
	// bottleneck): mu^-1 = [1.0, 1.2, 1.5, 2.7, 2.2, 0.2] ms.
	PaperExampleTable2
)

// PaperExampleTopology builds the six-operator topology of Figure 11 /
// Tables 1-2. The edge probabilities are reverse-engineered from the
// per-operator rates the tables report (see DESIGN.md): 1->2 (0.7),
// 1->3 (0.3), 2->6, 3->4 (2/3), 3->5 (1/3), 4->5 (0.25), 4->6 (0.75),
// 5->6. With these probabilities every delta and rho in both tables is
// reproduced, as are the fused service times (2.78 vs the paper's 2.80 ms
// and 4.40 vs 4.42 ms) and the predicted throughputs (1000 and ~758 vs 760
// tuples/s).
//
// It also returns the IDs of operators 3, 4, 5 — the subgraph fused in the
// paper's walk-through.
func PaperExampleTopology(variant PaperExampleVariant) (*Topology, []OpID) {
	ms := func(x float64) float64 { return x * 1e-3 }
	times := []float64{ms(1.0), ms(1.2), ms(0.7), ms(2.0), ms(1.5), ms(0.2)}
	if variant == PaperExampleTable2 {
		times = []float64{ms(1.0), ms(1.2), ms(1.5), ms(2.7), ms(2.2), ms(0.2)}
	}
	t := NewTopology()
	op1 := t.MustAddOperator(Operator{Name: "op1", Kind: KindSource, ServiceTime: times[0]})
	op2 := t.MustAddOperator(Operator{Name: "op2", Kind: KindStateful, ServiceTime: times[1]})
	op3 := t.MustAddOperator(Operator{Name: "op3", Kind: KindStateful, ServiceTime: times[2]})
	op4 := t.MustAddOperator(Operator{Name: "op4", Kind: KindStateful, ServiceTime: times[3]})
	op5 := t.MustAddOperator(Operator{Name: "op5", Kind: KindStateful, ServiceTime: times[4]})
	op6 := t.MustAddOperator(Operator{Name: "op6", Kind: KindSink, ServiceTime: times[5]})
	t.MustConnect(op1, op2, 0.7)
	t.MustConnect(op1, op3, 0.3)
	t.MustConnect(op2, op6, 1.0)
	t.MustConnect(op3, op4, 2.0/3.0)
	t.MustConnect(op3, op5, 1.0/3.0)
	t.MustConnect(op4, op5, 0.25)
	t.MustConnect(op4, op6, 0.75)
	t.MustConnect(op5, op6, 1.0)
	return t, []OpID{op3, op4, op5}
}
