// Package core implements the SpinStreams cost models and static
// optimization algorithms for data stream processing topologies.
//
// A streaming application is modeled as a rooted acyclic flow graph whose
// vertices are operators (queueing stations with a measured service rate,
// input/output selectivity and a state kind) and whose edges are data streams
// annotated with routing probabilities. The package provides:
//
//   - steady-state analysis of throughput under backpressure
//     (Blocking-After-Service semantics), Algorithm 1 of the paper;
//   - bottleneck elimination via operator fission with optimal replication
//     degrees and key partitioning for partitioned-stateful operators,
//     Algorithm 2, including the hold-off replica budget heuristic;
//   - operator fusion of single-front-end subgraphs into semantically
//     equivalent meta-operators, Algorithm 3, with automatic candidate
//     ranking;
//   - the fictitious-source transform that extends the analyses to
//     multi-source topologies.
//
// All rates are expressed in items per second and service times in seconds.
// The algorithms are purely analytical: they never execute the topology.
// Execution lives in the runtime and qsim packages, which share the same
// Topology model.
package core
