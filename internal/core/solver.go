package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"spinstreams/internal/keypart"
)

// Solver abstracts the steady-state analysis entry points so drivers that
// re-solve many closely related topologies (the autofuse accept/reject
// loop, the pass pipeline in internal/opt) can interpose a memoizing
// implementation keyed by Topology.Fingerprint. The contract mirrors the
// package-level functions exactly: a Solver must return the same Analysis
// SteadyState / SteadyStateWithReplicas would, and callers must treat the
// returned Analysis as immutable (a caching solver hands the same pointer
// to every caller with the same inputs).
type Solver interface {
	// SteadyState is Algorithm 1 on t (all replication degrees one).
	SteadyState(t *Topology) (*Analysis, error)
	// SteadyStateWithReplicas is the replica-pinned variant; part nil
	// selects keypart.Greedy.
	SteadyStateWithReplicas(t *Topology, replicas []int, part keypart.Partitioner) (*Analysis, error)
}

// DirectSolver is the identity Solver: every call runs the full analysis.
// It is the default wired into the classic entry points (Fuse, AutoFuse),
// which keeps their behavior bit-identical to the pre-pipeline tool.
type DirectSolver struct{}

// SteadyState implements Solver.
func (DirectSolver) SteadyState(t *Topology) (*Analysis, error) { return SteadyState(t) }

// SteadyStateWithReplicas implements Solver.
func (DirectSolver) SteadyStateWithReplicas(t *Topology, replicas []int, part keypart.Partitioner) (*Analysis, error) {
	return SteadyStateWithReplicas(t, replicas, part)
}

// Fingerprint reduces the topology to a 64-bit FNV-1a hash of its complete
// profile: operator names, kinds, exact service-time and selectivity bits,
// key-frequency distributions, implementation references, fused-member
// lists, and every edge with its exact routing probability. Two topologies
// with equal fingerprints produce identical analyses (modulo hash
// collisions), which is what the solver cache in internal/opt keys on.
func (t *Topology) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wF64 := func(v float64) { wU64(math.Float64bits(v)) }
	wStr := func(s string) {
		wU64(uint64(len(s)))
		h.Write([]byte(s))
	}
	wU64(uint64(t.Len()))
	for i := range t.ops {
		op := &t.ops[i]
		wStr(op.Name)
		wU64(uint64(op.Kind))
		wF64(op.ServiceTime)
		wF64(op.InputSelectivity)
		wF64(op.OutputSelectivity)
		wStr(op.Impl)
		if op.Keys != nil {
			wU64(uint64(len(op.Keys.Freq)))
			for _, f := range op.Keys.Freq {
				wF64(f)
			}
		} else {
			wU64(0)
		}
		wU64(uint64(len(op.Fused)))
		for _, name := range op.Fused {
			wStr(name)
		}
		wU64(uint64(len(t.out[i])))
		for _, e := range t.out[i] {
			wU64(uint64(e.To))
			wF64(e.Prob)
		}
	}
	return h.Sum64()
}
