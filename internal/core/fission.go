package core

import (
	"fmt"
	"math"

	"spinstreams/internal/keypart"
)

// FissionOptions tunes the bottleneck-elimination pass (Algorithm 2).
type FissionOptions struct {
	// MaxReplicas, when > 0, bounds the total number of replicas used in
	// the optimized topology (the paper's hold-off replication, Section
	// 3.2): if the unbounded pass needs N > MaxReplicas replicas, every
	// replication degree is scaled by MaxReplicas/N.
	MaxReplicas int
	// Partitioner assigns keys to replicas for partitioned-stateful
	// operators. Defaults to keypart.Greedy{}.
	Partitioner keypart.Partitioner
	// EmitterServiceTime, when > 0, enables the emitter/collector
	// saturation check the paper sketches in Section 4.2: replicating an
	// operator is pointless once the scheduling emitter itself saturates
	// at 1/EmitterServiceTime items per second. Replication degrees are
	// capped so the emitter never becomes the new bottleneck.
	EmitterServiceTime float64
	// Trace, when non-nil, receives a callback for every restructuring
	// decision the pass takes. Purely observational: tracing never changes
	// the outcome. The pass pipeline in internal/opt uses it to build
	// rewrite traces; source corrections are reported separately through
	// Analysis.Corrections.
	Trace *FissionTrace
}

// FissionTrace observes Algorithm 2's per-vertex decisions. Any field may
// be nil.
type FissionTrace struct {
	// OnFission fires when a saturated vertex is parallelized: rho is its
	// utilization at discovery, replicas the chosen degree, pmax the most
	// loaded replica's input share (partitioned-stateful only, else 0).
	OnFission func(v OpID, rho float64, replicas int, pmax float64)
	// OnReject fires when a saturated vertex cannot be (further)
	// parallelized and the source rate will be corrected instead.
	OnReject func(v OpID, rho float64, reason string)
	// OnBudget fires per vertex whose degree the hold-off replica budget
	// reduced (from -> to).
	OnBudget func(v OpID, from, to int)
}

func (tr *FissionTrace) fission(v OpID, rho float64, replicas int, pmax float64) {
	if tr != nil && tr.OnFission != nil {
		tr.OnFission(v, rho, replicas, pmax)
	}
}

func (tr *FissionTrace) reject(v OpID, rho float64, reason string) {
	if tr != nil && tr.OnReject != nil {
		tr.OnReject(v, rho, reason)
	}
}

func (tr *FissionTrace) budget(v OpID, from, to int) {
	if tr != nil && tr.OnBudget != nil && from != to {
		tr.OnBudget(v, from, to)
	}
}

// FissionResult is the outcome of bottleneck elimination.
type FissionResult struct {
	// Analysis holds the steady-state figures of the parallelized
	// topology, including the chosen replication degrees.
	Analysis *Analysis
	// TotalReplicas is the sum of all replication degrees.
	TotalReplicas int
	// AdditionalReplicas counts replicas beyond one per operator.
	AdditionalReplicas int
	// Unresolved lists operators that remain bottlenecks: stateful
	// operators, partitioned-stateful ones whose key skew prevents an even
	// split, and operators capped by the replica budget or emitter check.
	Unresolved []OpID
	// Capped reports that the replica budget reduced the replication
	// degrees below the unbounded optimum.
	Capped bool
}

// EliminateBottlenecks runs Algorithm 2: it traverses the topology in
// topological order and, at each saturated vertex, either parallelizes it
// (stateless: ceil(rho) replicas; partitioned-stateful: replicas chosen by
// key partitioning) or, when fission cannot unblock it, lowers the source
// departure rate per Theorem 3.2 and restarts. With opts.MaxReplicas set,
// a second pass re-evaluates the topology under the scaled-down degrees.
//
// The topology itself is not modified; the chosen degrees are reported in
// the result's Analysis.Replicas.
func EliminateBottlenecks(t *Topology, opts FissionOptions) (*FissionResult, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	order, err := t.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	part := opts.Partitioner
	if part == nil {
		part = keypart.Greedy{}
	}

	res := &FissionResult{Analysis: newAnalysis(t.Len())}
	a := res.Analysis
	if err := a.propagate(t, order, func(v OpID, lambda float64) bool {
		return res.tryFission(t, v, lambda, part, opts)
	}); err != nil {
		return nil, err
	}

	if opts.MaxReplicas > 0 {
		capped, err := res.applyBudget(t, order, opts)
		if err != nil {
			return nil, err
		}
		res.Capped = capped
		a = res.Analysis // applyBudget re-evaluates into a fresh analysis
	}

	a.finish(t)
	res.Unresolved = append([]OpID(nil), a.Limiting...)
	for i := range a.Replicas {
		res.TotalReplicas += a.Replicas[i]
		res.AdditionalReplicas += a.Replicas[i] - 1
	}
	return res, nil
}

// SteadyStateWithReplicas runs the steady-state analysis with pinned
// replication degrees: saturated vertices correct the source rate (as in
// Algorithm 1) instead of growing further. Partitioned-stateful operators
// with more than one replica are re-partitioned with part (nil selects
// keypart.Greedy) to obtain the load of their most loaded replica.
func SteadyStateWithReplicas(t *Topology, replicas []int, part keypart.Partitioner) (*Analysis, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if len(replicas) != t.Len() {
		return nil, fmt.Errorf("steady state: %d replicas for %d operators", len(replicas), t.Len())
	}
	order, err := t.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	if part == nil {
		part = keypart.Greedy{}
	}
	a := newAnalysis(t.Len())
	for i, n := range replicas {
		if n <= 1 {
			continue
		}
		op := t.Op(OpID(i))
		if !op.Kind.CanReplicate() {
			return nil, fmt.Errorf("steady state: operator %q of kind %s cannot be replicated", op.Name, op.Kind)
		}
		a.Replicas[i] = n
		if op.Kind == KindPartitionedStateful {
			asg, err := part.Partition(op.Keys.Freq, n)
			if err != nil {
				return nil, fmt.Errorf("steady state: partition %q: %w", op.Name, err)
			}
			a.Replicas[i] = asg.Replicas
			a.PMax[i] = asg.PMax
		}
	}
	if err := a.propagate(t, order, nil); err != nil {
		return nil, err
	}
	a.finish(t)
	return a, nil
}

// tryFission reacts to a saturated vertex. It returns true when the
// vertex's capacity was raised so the traversal can re-evaluate it, false
// when the bottleneck cannot be (further) eliminated and the source rate
// must be corrected instead.
func (res *FissionResult) tryFission(t *Topology, v OpID, lambda float64, part keypart.Partitioner, opts FissionOptions) bool {
	a := res.Analysis
	op := t.Op(v)
	rho := lambda / op.Rate()
	if a.Replicas[v] > 1 {
		// Already parallelized as far as this operator allows.
		opts.Trace.reject(v, lambda/a.capacity(t, v), "already replicated to its limit")
		return false
	}
	switch op.Kind {
	case KindStateless:
		n := optimalDegree(rho)
		n = capDegree(n, lambda, opts)
		if n <= 1 {
			opts.Trace.reject(v, rho, "emitter saturation caps the replication degree at 1")
			return false
		}
		a.Replicas[v] = n
		opts.Trace.fission(v, rho, n, 0)
		return true
	case KindPartitionedStateful:
		nopt := optimalDegree(rho)
		nopt = capDegree(nopt, lambda, opts)
		if nopt <= 1 {
			opts.Trace.reject(v, rho, "emitter saturation caps the replication degree at 1")
			return false
		}
		asg, err := part.Partition(op.Keys.Freq, nopt)
		if err != nil || asg.Replicas <= 1 {
			opts.Trace.reject(v, rho, "key skew prevents an effective split")
			return false
		}
		a.Replicas[v] = asg.Replicas
		a.PMax[v] = asg.PMax
		opts.Trace.fission(v, rho, asg.Replicas, asg.PMax)
		return true
	default:
		// Source, sink and monolithic stateful operators cannot be
		// replicated (Algorithm 2 line 24).
		opts.Trace.reject(v, rho, fmt.Sprintf("%s operator cannot be replicated", op.Kind))
		return false
	}
}

// optimalDegree computes ceil(rho), the minimum replication degree that
// unblocks a bottleneck with utilization rho (Definition 1).
func optimalDegree(rho float64) int {
	n := int(math.Ceil(rho - rhoTolerance))
	if n < 1 {
		n = 1
	}
	return n
}

// capDegree applies the emitter saturation check: beyond the degree at
// which the emitter actor saturates, additional replicas are useless
// because items cannot be scheduled fast enough.
func capDegree(n int, lambda float64, opts FissionOptions) int {
	if opts.EmitterServiceTime <= 0 || n <= 1 {
		return n
	}
	emitterRate := 1 / opts.EmitterServiceTime
	if lambda <= emitterRate {
		return n
	}
	// The emitter caps the deliverable arrival rate at emitterRate; more
	// replicas than ceil(emitterRate/mu_effective share) are wasted. We
	// conservatively cap n so that each replica is still fully usable.
	capN := int(math.Floor(emitterRate / (lambda / float64(n))))
	if capN < 1 {
		capN = 1
	}
	if capN < n {
		return capN
	}
	return n
}

// applyBudget implements hold-off replication: when the unbounded pass used
// N total replicas and the user allows Nmax < N, each degree is multiplied
// by r = Nmax/N (keeping at least one replica), then the steady state is
// re-evaluated with the reduced degrees so the reported rates reflect the
// budgeted topology. Small rounding anomalies are adjusted by removing
// replicas from the least-utilized operators until the budget is met.
func (res *FissionResult) applyBudget(t *Topology, order []OpID, opts FissionOptions) (bool, error) {
	a := res.Analysis
	total := 0
	for _, n := range a.Replicas {
		total += n
	}
	if total <= opts.MaxReplicas {
		return false, nil
	}
	r := float64(opts.MaxReplicas) / float64(total)
	budgeted := make([]int, len(a.Replicas))
	newTotal := 0
	for i, n := range a.Replicas {
		m := int(math.Floor(float64(n) * r))
		if m < 1 {
			m = 1
		}
		budgeted[i] = m
		newTotal += m
	}
	// Rounding can leave us above the budget (floors bounded below by 1);
	// trim replicas from the operators with the lowest per-replica load.
	for newTotal > opts.MaxReplicas {
		best := -1
		bestLoad := math.Inf(1)
		for i, m := range budgeted {
			if m <= 1 {
				continue
			}
			load := a.Lambda[i] / float64(m)
			if load < bestLoad {
				bestLoad = load
				best = i
			}
		}
		if best < 0 {
			break // every operator is at one replica; budget unreachable
		}
		budgeted[best]--
		newTotal--
	}
	for i, m := range budgeted {
		opts.Trace.budget(OpID(i), a.Replicas[i], m)
	}

	// Re-run the steady-state propagation with the degrees pinned: any
	// vertex that saturates now corrects the source rate (no new fission).
	fresh := newAnalysis(t.Len())
	copy(fresh.Replicas, budgeted)
	for i, n := range budgeted {
		if t.Op(OpID(i)).Kind == KindPartitionedStateful && n > 1 {
			// Re-partition the keys for the reduced degree.
			part := opts.Partitioner
			if part == nil {
				part = keypart.Greedy{}
			}
			asg, err := part.Partition(t.Op(OpID(i)).Keys.Freq, n)
			if err != nil {
				return false, fmt.Errorf("hold-off repartition %q: %w", t.Op(OpID(i)).Name, err)
			}
			fresh.Replicas[i] = asg.Replicas
			fresh.PMax[i] = asg.PMax
		}
	}
	if err := fresh.propagate(t, order, nil); err != nil {
		return false, err
	}
	res.Analysis = fresh
	return true, nil
}
