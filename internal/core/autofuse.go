package core

import "fmt"

// AutoFuseOptions tunes the automatic fusion process.
type AutoFuseOptions struct {
	// MaxUtilization rejects candidates whose meta-operator would exceed
	// this utilization in the fused topology; defaults to 0.9, leaving
	// headroom so fusion never flirts with saturation.
	MaxUtilization float64
	// MaxRounds bounds the number of fusion rounds (0 = no bound).
	MaxRounds int
	// NamePrefix names the generated meta-operators ("fusedN" by default).
	NamePrefix string
	// Trace, when non-nil, receives a callback for every candidate the
	// process accepts or rejects. Purely observational: tracing never
	// changes the outcome. The pass pipeline in internal/opt uses it to
	// build rewrite traces.
	Trace *FusionTrace
}

// FusionTrace observes the autofuse accept/reject loop. Any field may be
// nil. Member operators are reported by name because IDs shift between
// rounds.
type FusionTrace struct {
	// OnApply fires when a candidate is fused into the topology.
	OnApply func(round int, step AutoFuseStep, report *FusionReport)
	// OnReject fires when a candidate is skipped; utilization is the
	// meta-operator's predicted utilization (0 when the rejection happened
	// before it could be evaluated).
	OnReject func(round int, memberNames []string, utilization float64, reason string)
}

func (tr *FusionTrace) apply(round int, step AutoFuseStep, report *FusionReport) {
	if tr != nil && tr.OnApply != nil {
		tr.OnApply(round, step, report)
	}
}

func (tr *FusionTrace) reject(round int, memberNames []string, utilization float64, reason string) {
	if tr != nil && tr.OnReject != nil {
		tr.OnReject(round, memberNames, utilization, reason)
	}
}

// AutoFuseStep records one applied fusion.
type AutoFuseStep struct {
	// MemberNames are the fused operators (names, since IDs shift between
	// rounds).
	MemberNames []string
	// FusedName is the meta-operator's name.
	FusedName string
	// ServiceTime is the meta-operator's predicted service time.
	ServiceTime float64
	// Utilization is its predicted utilization after the fusion.
	Utilization float64
}

// AutoFuseResult is the outcome of the automatic fusion process.
type AutoFuseResult struct {
	// Topology is the final fused topology.
	Topology *Topology
	// Steps lists the fusions applied, in order.
	Steps []AutoFuseStep
	// ThroughputBefore and ThroughputAfter are the predicted throughputs
	// of the initial and final topologies; automatic fusion never lowers
	// the predicted throughput.
	ThroughputBefore, ThroughputAfter float64
	// OperatorsBefore and OperatorsAfter count the vertices.
	OperatorsBefore, OperatorsAfter int
}

// AutoFuse automates the operator-fusion process the paper leaves to the
// user (and lists as future work in Section 7): it repeatedly evaluates the
// ranked fusion candidates (dominated single-front-end subgraphs) and
// applies the most underutilized one whose meta-operator stays below the
// utilization threshold and whose predicted topology throughput is
// preserved, until no candidate qualifies. The result is a coarser,
// semantically equivalent topology with fewer scheduling units and no new
// bottleneck.
func AutoFuse(t *Topology, opts AutoFuseOptions) (*AutoFuseResult, error) {
	return AutoFuseWith(t, opts, DirectSolver{})
}

// AutoFuseWith is AutoFuse with every steady-state analysis routed through
// solver. The accept/reject loop re-solves the current topology once per
// round plus twice per candidate tried (before/after inside FuseWith); a
// memoizing solver collapses the repeated "current topology" solves, which
// is the win BenchmarkSolverCacheAutoFuse measures. AutoFuseWith with
// DirectSolver is exactly AutoFuse.
func AutoFuseWith(t *Topology, opts AutoFuseOptions, solver Solver) (*AutoFuseResult, error) {
	if solver == nil {
		solver = DirectSolver{}
	}
	if opts.MaxUtilization <= 0 || opts.MaxUtilization > 1 {
		opts.MaxUtilization = 0.9
	}
	if opts.NamePrefix == "" {
		opts.NamePrefix = "fused"
	}
	base, err := solver.SteadyState(t)
	if err != nil {
		return nil, err
	}
	res := &AutoFuseResult{
		Topology:         t.Clone(),
		ThroughputBefore: base.Throughput(),
		OperatorsBefore:  t.Len(),
	}
	round := 0
	for {
		if opts.MaxRounds > 0 && round >= opts.MaxRounds {
			break
		}
		cur := res.Topology
		a, err := solver.SteadyState(cur)
		if err != nil {
			return nil, err
		}
		cands, err := fusionCandidates(cur, a, func(members []OpID, rho float64) {
			opts.Trace.reject(round, memberNames(cur, members), rho,
				"fusing would introduce a bottleneck (alert)")
		})
		if err != nil {
			return nil, err
		}
		applied := false
		for _, c := range cands {
			names := memberNames(cur, c.Members)
			if c.FusedUtilization > opts.MaxUtilization {
				opts.Trace.reject(round, names, c.FusedUtilization, "predicted utilization above threshold")
				continue
			}
			name := fmt.Sprintf("%s%d", opts.NamePrefix, round+1)
			fused, report, err := FuseWith(cur, c.Members, name, solver)
			if err != nil {
				opts.Trace.reject(round, names, c.FusedUtilization, fmt.Sprintf("fusion failed: %v", err))
				continue
			}
			if report.IntroducesBottleneck {
				opts.Trace.reject(round, names, report.After.Rho[report.FusedID], "meta-operator becomes a bottleneck")
				continue
			}
			if report.ThroughputAfter < res.ThroughputBefore*(1-rhoTolerance) {
				opts.Trace.reject(round, names, report.After.Rho[report.FusedID], "predicted throughput degrades")
				continue
			}
			step := AutoFuseStep{
				MemberNames: names,
				FusedName:   name,
				ServiceTime: report.ServiceTime,
				Utilization: report.After.Rho[report.FusedID],
			}
			opts.Trace.apply(round, step, report)
			res.Steps = append(res.Steps, step)
			res.Topology = fused
			applied = true
			round++
			break
		}
		if !applied {
			break
		}
	}
	final, err := solver.SteadyState(res.Topology)
	if err != nil {
		return nil, err
	}
	res.ThroughputAfter = final.Throughput()
	res.OperatorsAfter = res.Topology.Len()
	return res, nil
}

func memberNames(t *Topology, members []OpID) []string {
	names := make([]string, 0, len(members))
	for _, m := range members {
		names = append(names, t.Op(m).Name)
	}
	return names
}
