package core

import "fmt"

// AutoFuseOptions tunes the automatic fusion process.
type AutoFuseOptions struct {
	// MaxUtilization rejects candidates whose meta-operator would exceed
	// this utilization in the fused topology; defaults to 0.9, leaving
	// headroom so fusion never flirts with saturation.
	MaxUtilization float64
	// MaxRounds bounds the number of fusion rounds (0 = no bound).
	MaxRounds int
	// NamePrefix names the generated meta-operators ("fusedN" by default).
	NamePrefix string
}

// AutoFuseStep records one applied fusion.
type AutoFuseStep struct {
	// MemberNames are the fused operators (names, since IDs shift between
	// rounds).
	MemberNames []string
	// FusedName is the meta-operator's name.
	FusedName string
	// ServiceTime is the meta-operator's predicted service time.
	ServiceTime float64
	// Utilization is its predicted utilization after the fusion.
	Utilization float64
}

// AutoFuseResult is the outcome of the automatic fusion process.
type AutoFuseResult struct {
	// Topology is the final fused topology.
	Topology *Topology
	// Steps lists the fusions applied, in order.
	Steps []AutoFuseStep
	// ThroughputBefore and ThroughputAfter are the predicted throughputs
	// of the initial and final topologies; automatic fusion never lowers
	// the predicted throughput.
	ThroughputBefore, ThroughputAfter float64
	// OperatorsBefore and OperatorsAfter count the vertices.
	OperatorsBefore, OperatorsAfter int
}

// AutoFuse automates the operator-fusion process the paper leaves to the
// user (and lists as future work in Section 7): it repeatedly evaluates the
// ranked fusion candidates (dominated single-front-end subgraphs) and
// applies the most underutilized one whose meta-operator stays below the
// utilization threshold and whose predicted topology throughput is
// preserved, until no candidate qualifies. The result is a coarser,
// semantically equivalent topology with fewer scheduling units and no new
// bottleneck.
func AutoFuse(t *Topology, opts AutoFuseOptions) (*AutoFuseResult, error) {
	if opts.MaxUtilization <= 0 || opts.MaxUtilization > 1 {
		opts.MaxUtilization = 0.9
	}
	if opts.NamePrefix == "" {
		opts.NamePrefix = "fused"
	}
	base, err := SteadyState(t)
	if err != nil {
		return nil, err
	}
	res := &AutoFuseResult{
		Topology:         t.Clone(),
		ThroughputBefore: base.Throughput(),
		OperatorsBefore:  t.Len(),
	}
	round := 0
	for {
		if opts.MaxRounds > 0 && round >= opts.MaxRounds {
			break
		}
		cur := res.Topology
		a, err := SteadyState(cur)
		if err != nil {
			return nil, err
		}
		cands, err := FusionCandidates(cur, a)
		if err != nil {
			return nil, err
		}
		applied := false
		for _, c := range cands {
			if c.FusedUtilization > opts.MaxUtilization {
				continue
			}
			name := fmt.Sprintf("%s%d", opts.NamePrefix, round+1)
			fused, report, err := Fuse(cur, c.Members, name)
			if err != nil {
				continue
			}
			if report.IntroducesBottleneck || report.ThroughputAfter < res.ThroughputBefore*(1-rhoTolerance) {
				continue
			}
			memberNames := make([]string, 0, len(c.Members))
			for _, m := range c.Members {
				memberNames = append(memberNames, cur.Op(m).Name)
			}
			res.Steps = append(res.Steps, AutoFuseStep{
				MemberNames: memberNames,
				FusedName:   name,
				ServiceTime: report.ServiceTime,
				Utilization: report.After.Rho[report.FusedID],
			})
			res.Topology = fused
			applied = true
			round++
			break
		}
		if !applied {
			break
		}
	}
	final, err := SteadyState(res.Topology)
	if err != nil {
		return nil, err
	}
	res.ThroughputAfter = final.Throughput()
	res.OperatorsAfter = res.Topology.Len()
	return res, nil
}
