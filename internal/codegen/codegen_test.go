package codegen

import (
	"bytes"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/operators"
	"spinstreams/internal/opt"
	"spinstreams/internal/randtopo"
)

func paperInput(t *testing.T) Input {
	t.Helper()
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	specs := make([]operators.Spec, topo.Len())
	specs[0] = operators.Spec{Impl: "source"}
	for i := 1; i < topo.Len(); i++ {
		specs[i] = operators.Spec{Impl: "identity"}
	}
	return Input{Topology: topo, Specs: specs}
}

func generate(t *testing.T, in Input) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Generate(&buf, in); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func parseOK(t *testing.T, src string) {
	t.Helper()
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src)
	}
}

func TestGeneratePlain(t *testing.T) {
	src := generate(t, paperInput(t))
	parseOK(t, src)
	for _, want := range []string{
		"package main", "core.NewTopology()", "MustConnect", "runtime.RunTopology",
		"core.SteadyState(t)",
		// The generated program exposes the dataplane knobs and routes
		// them into the runtime config.
		`flag.String("mailbox-mode"`, `flag.Int("batch"`, `flag.Duration("linger"`,
		"mbox.ParseMode", "Mailbox:     transport",
		// Fault-tolerance knob: bounded operator restart.
		`flag.Int("max-restarts"`, "MaxRestarts: maxRestarts",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestGenerateWithReplicas(t *testing.T) {
	in := paperInput(t)
	// Stateless vertices for replication.
	for i := 1; i < in.Topology.Len()-1; i++ {
		in.Topology.Op(core.OpID(i)).Kind = core.KindStateless
	}
	in.Replicas = []int{1, 2, 1, 3, 1, 1}
	src := generate(t, in)
	parseOK(t, src)
	if !strings.Contains(src, "SteadyStateWithReplicas") {
		t.Error("replica program does not pin degrees")
	}
}

func TestGenerateWithFusion(t *testing.T) {
	in := paperInput(t)
	in.FuseMembers = []core.OpID{2, 3, 4}
	in.FusedName = "F"
	src := generate(t, in)
	parseOK(t, src)
	for _, want := range []string{"core.Fuse(t, members", "NewMetaOperator", "report.SurvivorIDs"} {
		if !strings.Contains(src, want) {
			t.Errorf("fusion program missing %q", want)
		}
	}
}

func TestGenerateWithKeys(t *testing.T) {
	topo := core.NewTopology()
	topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	ps := topo.MustAddOperator(core.Operator{
		Name: "agg", Kind: core.KindPartitionedStateful, ServiceTime: 0.002,
		Keys: &core.KeyDistribution{Freq: []float64{0.5, 0.5}},
	})
	topo.MustConnect(0, ps, 1)
	src := generate(t, Input{
		Topology: topo,
		Specs:    []operators.Spec{{Impl: "source"}, {Impl: "wsum", WindowLen: 100, Slide: 10}},
	})
	parseOK(t, src)
	if !strings.Contains(src, "KeyDistribution{Freq: []float64{0.5, 0.5}}") {
		t.Error("key distribution not emitted")
	}
}

func TestGenerateValidation(t *testing.T) {
	in := paperInput(t)
	in.Specs = in.Specs[:2]
	if err := Generate(&bytes.Buffer{}, in); err == nil {
		t.Error("spec count mismatch accepted")
	}
	in = paperInput(t)
	in.Replicas = []int{1}
	if err := Generate(&bytes.Buffer{}, in); err == nil {
		t.Error("replica count mismatch accepted")
	}
	in = paperInput(t)
	in.Replicas = make([]int, in.Topology.Len())
	in.FuseMembers = []core.OpID{2, 3}
	if err := Generate(&bytes.Buffer{}, in); err == nil {
		t.Error("fusion+replicas accepted")
	}
	if err := Generate(&bytes.Buffer{}, Input{}); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestGenerateRandomTopologiesParse(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g, err := randtopo.Generate(randtopo.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		src := generate(t, Input{Topology: g.Topology, Specs: g.Specs})
		parseOK(t, src)
	}
}

// TestGeneratedProgramBuildsAndRuns is the full integration check: the
// generated program must compile inside this module and execute.
func TestGeneratedProgramBuildsAndRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs a generated binary")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	// Directories starting with "." are invisible to the go tool, so a
	// leftover cannot break ./... builds.
	dir, err := os.MkdirTemp(root, ".codegen-test-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	src := generate(t, paperInput(t))
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "gen")
	build := exec.Command("go", "build", "-o", bin, dir)
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build failed: %v\n%s\n--- generated source ---\n%s", err, out, src)
	}
	// Every dataplane transport must work in generated programs,
	// including the per-edge auto policy.
	for _, args := range [][]string{
		{"-duration", "400ms"},
		{"-duration", "400ms", "-mailbox-mode", "batch", "-batch", "16", "-linger", "500us"},
		{"-duration", "400ms", "-mailbox-mode", "auto", "-batch", "16"},
	} {
		run := exec.Command(bin, args...)
		out, err := run.CombinedOutput()
		if err != nil {
			t.Fatalf("generated binary %v failed: %v\n%s", args, err, out)
		}
		for _, want := range []string{"predicted throughput", "measured  throughput"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("%v output missing %q:\n%s", args, want, out)
			}
		}
	}
}

// TestFromResult wires an optimizer pipeline result into an Input: the
// final fused topology generates a valid program, and an all-ones
// replica vector collapses to nil.
func TestFromResult(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	res, err := opt.Run(topo, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	final := res.Final.Topology()
	if final.Len() >= topo.Len() {
		t.Fatalf("expected fusion to shrink the topology (%d -> %d)", topo.Len(), final.Len())
	}
	specs := make([]operators.Spec, final.Len())
	specs[0] = operators.Spec{Impl: "source"}
	for i := 1; i < final.Len(); i++ {
		specs[i] = operators.Spec{Impl: "identity"}
	}
	in := FromResult(res, specs)
	if in.Topology != final {
		t.Error("FromResult did not use the final topology")
	}
	if in.Replicas != nil {
		t.Errorf("all-ones replicas should collapse to nil, got %v", in.Replicas)
	}
	var buf bytes.Buffer
	if err := Generate(&buf, in); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if !strings.Contains(buf.String(), "package main") {
		t.Error("generated program is not a main package")
	}

	// A replicated result carries its degrees through.
	bott := core.NewTopology()
	src := bott.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 1e-3})
	hot := bott.MustAddOperator(core.Operator{Name: "hot", Kind: core.KindStateless, ServiceTime: 4e-3})
	snk := bott.MustAddOperator(core.Operator{Name: "snk", Kind: core.KindSink, ServiceTime: 1e-4})
	bott.MustConnect(src, hot, 1)
	bott.MustConnect(hot, snk, 1)
	res2, err := opt.Run(bott, opt.Options{DisableFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	in2 := FromResult(res2, []operators.Spec{{Impl: "source"}, {Impl: "identity"}, {Impl: "identity"}})
	if in2.Replicas == nil || in2.Replicas[1] != 4 {
		t.Errorf("replicas = %v, want hot at 4", in2.Replicas)
	}
	if err := Generate(&buf, in2); err != nil {
		t.Fatalf("generate replicated: %v", err)
	}
}
