package window

import (
	"testing"
	"testing/quick"
)

func TestNewCountErrors(t *testing.T) {
	if _, err := NewCount[int](0, 1); err == nil {
		t.Error("length 0 accepted")
	}
	if _, err := NewCount[int](5, 0); err == nil {
		t.Error("slide 0 accepted")
	}
	if _, err := NewCount[int](-1, -1); err == nil {
		t.Error("negative sizes accepted")
	}
}

func TestFirstFireWhenFull(t *testing.T) {
	w := MustCount[int](3, 2)
	if w.Add(1) || w.Add(2) {
		t.Fatal("fired before full")
	}
	if !w.Add(3) {
		t.Fatal("did not fire when full")
	}
	got := w.Snapshot(nil)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", got, want)
		}
	}
}

func TestSlideCadence(t *testing.T) {
	w := MustCount[int](3, 2)
	fires := 0
	for i := 1; i <= 11; i++ {
		if w.Add(i) {
			fires++
		}
	}
	// Fires at arrivals 3, 5, 7, 9, 11.
	if fires != 5 {
		t.Fatalf("fires = %d, want 5", fires)
	}
	got := w.Snapshot(nil)
	want := []int{9, 10, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", got, want)
		}
	}
}

func TestSlideLargerThanLength(t *testing.T) {
	w := MustCount[int](2, 5)
	fireAt := []int{}
	for i := 1; i <= 14; i++ {
		if w.Add(i) {
			fireAt = append(fireAt, i)
		}
	}
	// Full at 2, then every 5 arrivals: 7, 12.
	want := []int{2, 7, 12}
	if len(fireAt) != len(want) {
		t.Fatalf("fired at %v, want %v", fireAt, want)
	}
	for i := range want {
		if fireAt[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fireAt, want)
		}
	}
}

func TestTumbling(t *testing.T) {
	// length == slide: non-overlapping windows.
	w := MustCount[int](4, 4)
	fires := 0
	for i := 0; i < 16; i++ {
		if w.Add(i) {
			fires++
		}
	}
	if fires != 4 {
		t.Fatalf("fires = %d, want 4", fires)
	}
}

func TestReset(t *testing.T) {
	w := MustCount[int](2, 1)
	w.Add(1)
	w.Add(2)
	w.Reset()
	if w.Len() != 0 || w.Full() {
		t.Fatal("reset did not empty the window")
	}
	if w.Add(3) {
		t.Fatal("fired immediately after reset")
	}
	if !w.Add(4) {
		t.Fatal("did not fire when refilled")
	}
}

func TestAccessors(t *testing.T) {
	w := MustCount[string](10, 3)
	if w.Length() != 10 || w.Slide() != 3 || w.InputSelectivity() != 3 {
		t.Fatalf("accessors: %d %d %v", w.Length(), w.Slide(), w.InputSelectivity())
	}
	w.Add("a")
	if w.Len() != 1 {
		t.Fatalf("Len = %d", w.Len())
	}
	got := w.Snapshot(make([]string, 0, 10))
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("snapshot = %v", got)
	}
}

// Property: after n adds the snapshot always holds the last min(n, length)
// items in order, and the fire count matches the analytic formula
// 1 + floor((n-length)/slide) for n >= length.
func TestCountProperties(t *testing.T) {
	f := func(lenRaw, slideRaw uint8, nRaw uint16) bool {
		length := 1 + int(lenRaw)%20
		slide := 1 + int(slideRaw)%25
		n := int(nRaw) % 400
		w := MustCount[int](length, slide)
		fires := 0
		for i := 0; i < n; i++ {
			if w.Add(i) {
				fires++
			}
		}
		wantFires := 0
		if n >= length {
			wantFires = 1 + (n-length)/slide
		}
		if fires != wantFires {
			return false
		}
		snap := w.Snapshot(nil)
		wantLen := n
		if wantLen > length {
			wantLen = length
		}
		if len(snap) != wantLen {
			return false
		}
		for i, v := range snap {
			if v != n-wantLen+i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
