// Package window implements count-based sliding windows, the buffering
// discipline behind the paper's stateful operators (aggregations, spatial
// queries and band-joins are all evaluated "over the last w items, every s
// new items").
package window

import "fmt"

// Count is a count-based sliding window of float64 payloads with length w
// and slide s: once w items have been buffered, the window fires on every
// s-th arrival, exposing the most recent w items.
//
// The zero value is not usable; construct with NewCount. Count is not safe
// for concurrent use: each operator replica owns its windows.
type Count[T any] struct {
	buf        []T
	head       int // index of the oldest element
	size       int
	length     int
	slide      int
	sinceFire  int
	totalAdded uint64
}

// NewCount returns a window with the given length and slide. Length and
// slide must be positive; slide may exceed length (sampling windows).
func NewCount[T any](length, slide int) (*Count[T], error) {
	if length <= 0 {
		return nil, fmt.Errorf("window: length %d, must be > 0", length)
	}
	if slide <= 0 {
		return nil, fmt.Errorf("window: slide %d, must be > 0", slide)
	}
	return &Count[T]{
		buf:    make([]T, length),
		length: length,
		slide:  slide,
	}, nil
}

// MustCount is NewCount that panics on error; for statically-known sizes.
func MustCount[T any](length, slide int) *Count[T] {
	w, err := NewCount[T](length, slide)
	if err != nil {
		panic(err)
	}
	return w
}

// Add buffers one item and reports whether the window fires: the first time
// the window is full, and every slide-th arrival after that.
func (w *Count[T]) Add(item T) bool {
	if w.size < w.length {
		w.buf[(w.head+w.size)%w.length] = item
		w.size++
	} else {
		w.buf[w.head] = item
		w.head = (w.head + 1) % w.length
	}
	w.totalAdded++
	if w.size < w.length {
		return false
	}
	if w.totalAdded == uint64(w.length) {
		w.sinceFire = 0
		return true
	}
	w.sinceFire++
	if w.sinceFire >= w.slide {
		w.sinceFire = 0
		return true
	}
	return false
}

// Snapshot appends the window content, oldest first, to dst and returns the
// extended slice. It allocates only when dst lacks capacity.
func (w *Count[T]) Snapshot(dst []T) []T {
	for i := 0; i < w.size; i++ {
		dst = append(dst, w.buf[(w.head+i)%w.length])
	}
	return dst
}

// Len returns the number of buffered items (at most the window length).
func (w *Count[T]) Len() int { return w.size }

// Length returns the configured window length.
func (w *Count[T]) Length() int { return w.length }

// Slide returns the configured slide.
func (w *Count[T]) Slide() int { return w.slide }

// Full reports whether the window holds length items.
func (w *Count[T]) Full() bool { return w.size == w.length }

// Reset empties the window.
func (w *Count[T]) Reset() {
	w.head, w.size, w.sinceFire, w.totalAdded = 0, 0, 0, 0
}

// InputSelectivity returns the steady-state number of items consumed per
// emitted result: the slide. This is the value the cost model uses for
// windowed operators (Section 3.4).
func (w *Count[T]) InputSelectivity() float64 { return float64(w.slide) }
