package stats

import (
	"math"
	"sort"
	"sync"
	"testing"
)

func TestHistIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose [lower, upper) contains it.
	probe := []uint64{0, 1, 2, 15, 31, 32, 33, 47, 48, 63, 64, 65, 100, 127, 128,
		1000, 4095, 4096, 1 << 20, 1<<20 + 3, 1<<40 - 1, 1 << 40, 1<<62 + 12345}
	for _, v := range probe {
		i := histIndex(v)
		lo, hi := histLower(i), histUpper(i)
		if hi > lo && (v < lo || v >= hi) {
			t.Fatalf("value %d mapped to bucket %d = [%d,%d)", v, i, lo, hi)
		}
	}
	// Bucket boundaries must tile the value space without gaps or overlaps.
	for i := 0; i < histBuckets-1; i++ {
		if histUpper(i) != histLower(i+1) {
			t.Fatalf("bucket %d upper %d != bucket %d lower %d", i, histUpper(i), i+1, histLower(i+1))
		}
	}
	if histIndex(math.MaxUint64) >= histBuckets {
		t.Fatalf("MaxUint64 index %d out of range %d", histIndex(math.MaxUint64), histBuckets)
	}
}

func TestHistogramExactBelowOctave(t *testing.T) {
	h := NewHistogram()
	for v := uint64(0); v < 32; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q0 = %v, want 0", got)
	}
	if got := h.Quantile(1); got != 31 {
		t.Fatalf("q1 = %v, want 31", got)
	}
	if got, want := h.Mean(), 15.5; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if h.Count() != 32 || h.Max() != 31 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
}

// TestHistogramQuantileError draws known distributions and asserts every
// estimated quantile is within the documented HistogramQuantileErr bound of
// the exact sample quantile.
func TestHistogramQuantileError(t *testing.T) {
	const n = 200000
	rng := NewRNG(7)
	cases := []struct {
		name string
		draw func() uint64
	}{
		{"uniform[0,1e6)", func() uint64 { return uint64(rng.Float64() * 1e6) }},
		{"exponential(mean=50us)", func() uint64 { return uint64(rng.Exp(50000)) }},
		{"lognormal(mu=10,sigma=1)", func() uint64 {
			// Box-Muller from two uniforms.
			u1, u2 := rng.Float64(), rng.Float64()
			for u1 == 0 {
				u1 = rng.Float64()
			}
			z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
			return uint64(math.Exp(10 + z))
		}},
		{"bimodal(100|1e7)", func() uint64 {
			if rng.Float64() < 0.5 {
				return 100
			}
			return 10000000
		}},
	}
	quantiles := []float64{0.5, 0.9, 0.95, 0.99, 0.999}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram()
			sample := make([]float64, n)
			var sum float64
			for i := range sample {
				v := tc.draw()
				sample[i] = float64(v)
				sum += float64(v)
				h.Record(v)
			}
			sort.Float64s(sample)
			for _, q := range quantiles {
				exact := sample[int(math.Ceil(q*float64(n)))-1]
				got := h.Quantile(q)
				if exact >= 32 { // documented bound applies above the linear range
					if err := RelErr(got, exact); err > HistogramQuantileErr {
						t.Errorf("q%.3f: got %.0f exact %.0f rel err %.4f > %.4f",
							q, got, exact, err, HistogramQuantileErr)
					}
				} else if got != exact {
					t.Errorf("q%.3f: got %v, want exact %v", q, got, exact)
				}
			}
			if err := RelErr(h.Mean(), sum/float64(n)); err > 1e-9 {
				t.Errorf("mean: got %v want %v (histogram mean must be exact)", h.Mean(), sum/float64(n))
			}
		})
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := NewRNG(seed)
			for i := 0; i < per; i++ {
				h.Record(uint64(rng.Intn(100000)))
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var bucketSum uint64
	for _, b := range h.Buckets() {
		bucketSum += b.Count
	}
	if bucketSum != workers*per {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, workers*per)
	}
}

func TestHistogramRecordN(t *testing.T) {
	h := NewHistogram()
	h.RecordN(1000, 5)
	h.RecordN(2000, 0) // no-op
	if h.Count() != 5 || h.Sum() != 5000 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if err := RelErr(h.Quantile(0.5), 1000); err > HistogramQuantileErr {
		t.Fatalf("median %v too far from 1000", h.Quantile(0.5))
	}
	s := h.Summary()
	if s.Count != 5 || s.Mean != 1000 || s.Max != 1000 {
		t.Fatalf("summary %+v", s)
	}
}
