// Package stats provides the deterministic random-number and statistics
// utilities the testbed and experiments are built on: a seedable splitmix64
// PRNG, a ZipF sampler (the paper generates edge probabilities and key
// frequencies from power laws), and descriptive statistics for reporting.
package stats

import (
	"errors"
	"math"
	"sort"
)

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64. It is not safe for concurrent use; give each goroutine its
// own instance (Fork derives independent streams).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntBetween returns a uniform value in [lo, hi] inclusive.
func (r *RNG) IntBetween(lo, hi int) int {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + r.Intn(hi-lo+1)
}

// FloatBetween returns a uniform value in [lo, hi).
func (r *RNG) FloatBetween(lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Fork derives an independent generator; useful to give each operator or
// actor its own deterministic stream.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// Zipf samples integers in [0, n) with P(k) proportional to 1/(k+1)^s,
// matching the paper's power-law generation of edge probabilities and key
// frequencies (scaling exponent s > 1 gives skewed distributions).
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a sampler over n values with exponent s.
func NewZipf(rng *RNG, n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, errors.New("stats: zipf needs n > 0")
	}
	if s <= 0 {
		return nil, errors.New("stats: zipf needs s > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}, nil
}

// Sample draws one value in [0, n).
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	// Small key domains (the common testbed case) sit on the dataplane's
	// per-tuple hot path: a branch-per-entry scan beats the search
	// closure's call overhead there. Both forms return the smallest i
	// with cdf[i] >= u, so the sampled stream is identical.
	if len(z.cdf) <= 32 {
		for i, c := range z.cdf {
			if c >= u {
				return i
			}
		}
		return len(z.cdf) - 1
	}
	return sort.SearchFloat64s(z.cdf, u)
}

// Probabilities returns the probability mass function the sampler uses.
func (z *Zipf) Probabilities() []float64 {
	out := make([]float64, len(z.cdf))
	prev := 0.0
	for i, c := range z.cdf {
		out[i] = c - prev
		prev = c
	}
	return out
}

// ZipfWeights returns n normalized ZipF(s) probabilities without building a
// sampler; convenient for generating edge probability distributions.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for k := range w {
		w[k] = 1 / math.Pow(float64(k+1), s)
		sum += w[k]
	}
	for k := range w {
		w[k] /= sum
	}
	return w
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, StdDev       float64
	Min, Max           float64
	P50, P90, P95, P99 float64
}

// Summarize computes descriptive statistics. An empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(varSum / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile interpolates the q-quantile of a sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RelErr returns |got-want| / |want|; 0 when want is 0 and got is 0, and
// +Inf when want is 0 but got is not.
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}
