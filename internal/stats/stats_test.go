package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(2)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		got := float64(c) / n
		if math.Abs(got-0.1) > 0.01 {
			t.Errorf("value %d frequency %v, want ~0.1", v, got)
		}
	}
}

func TestRNGIntBetween(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.IntBetween(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntBetween(5,9) = %d", v)
		}
	}
	if v := r.IntBetween(7, 7); v != 7 {
		t.Fatalf("IntBetween(7,7) = %d", v)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(2.5)
	}
	if mean := sum / n; math.Abs(mean-2.5) > 0.05 {
		t.Errorf("Exp mean = %v, want ~2.5", mean)
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(5)
	f := r.Fork()
	if r.Uint64() == f.Uint64() {
		t.Error("forked stream mirrors parent")
	}
}

func TestZipfProbabilities(t *testing.T) {
	z, err := NewZipf(NewRNG(6), 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	probs := z.Probabilities()
	sum := 0.0
	for i, p := range probs {
		sum += p
		if i > 0 && p > probs[i-1]+1e-12 {
			t.Errorf("probabilities not decreasing at %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestZipfSampleMatchesPMF(t *testing.T) {
	z, err := NewZipf(NewRNG(7), 8, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	counts := make([]int, 8)
	for i := 0; i < n; i++ {
		counts[z.Sample()]++
	}
	probs := z.Probabilities()
	for k := range probs {
		got := float64(counts[k]) / n
		if math.Abs(got-probs[k]) > 0.01 {
			t.Errorf("value %d frequency %v, want %v", k, got, probs[k])
		}
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(NewRNG(1), 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(NewRNG(1), 3, 0); err == nil {
		t.Error("s=0 accepted")
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 2.0)
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	if !(w[0] > w[1] && w[1] > w[2] && w[2] > w[3]) {
		t.Errorf("weights not decreasing: %v", w)
	}
	// s=2: w[0]/w[1] = 4.
	if math.Abs(w[0]/w[1]-4) > 1e-9 {
		t.Errorf("w0/w1 = %v, want 4", w[0]/w[1])
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("StdDev = %v, want sqrt(2.5)", s.StdDev)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("Summarize(nil) = %+v", got)
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P99 != 7 || one.StdDev != 0 {
		t.Errorf("Summarize(single) = %+v", one)
	}
}

func TestRelErr(t *testing.T) {
	tests := []struct {
		got, want, out float64
	}{
		{110, 100, 0.1}, {90, 100, 0.1}, {0, 0, 0}, {-5, -10, 0.5},
	}
	for _, tc := range tests {
		if got := RelErr(tc.got, tc.want); math.Abs(got-tc.out) > 1e-12 {
			t.Errorf("RelErr(%v, %v) = %v, want %v", tc.got, tc.want, got, tc.out)
		}
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1, 0) should be +Inf")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if math.Abs(s.P50-5) > 1e-12 {
		t.Errorf("P50 = %v, want 5", s.P50)
	}
	if math.Abs(s.P90-9) > 1e-12 {
		t.Errorf("P90 = %v, want 9", s.P90)
	}
}

// Property: summary invariants hold for arbitrary samples.
func TestSummarizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// Keep magnitudes bounded so sums cannot overflow and float
			// rounding cannot break the ordering invariants.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		s := Summarize(clean)
		if len(clean) == 0 {
			return s.N == 0
		}
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P95 && s.P95 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
