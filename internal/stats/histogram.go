package stats

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a lock-free log-linear histogram of non-negative integer
// values (HDR-histogram style). Each power-of-two octave is split into
// 2^histSubBits linear sub-buckets, so the relative width of any bucket is
// at most 1/2^(histSubBits-1) = 6.25%: quantile estimates (taken at bucket
// midpoints) carry a worst-case relative error of half that bucket width
// plus the midpoint bias, ~6.25% overall — the bound HistogramQuantileErr
// documents and the tests in histogram_test.go enforce.
//
// Record and all read accessors are safe for concurrent use; readers see
// some consistent-enough interleaving of concurrent writes (counts are
// monotone, never torn). The zero value is not usable; call NewHistogram.
type Histogram struct {
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// histSubBits sets the linear resolution inside each octave: 2^5 = 32
// sub-buckets, of which the upper 16 are distinct per octave (the lower 16
// alias the previous octave).
const histSubBits = 5

// histHalf is the number of distinct sub-buckets contributed per octave
// above the first.
const histHalf = 1 << (histSubBits - 1)

// histBuckets covers values up to 2^63-1: the first 2^histSubBits values
// map to themselves, then each of the remaining 64-histSubBits octaves adds
// histHalf buckets.
const histBuckets = (1 << histSubBits) + (64-histSubBits)*histHalf

// HistogramQuantileErr is the documented worst-case relative error of
// Quantile on values >= 2^histSubBits (smaller values are exact): bucket
// width / bucket lower bound = 1/histHalf.
const HistogramQuantileErr = 1.0 / histHalf

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Uint64, histBuckets)}
}

// histIndex maps a value to its bucket index.
func histIndex(v uint64) int {
	if v < 1<<histSubBits {
		return int(v)
	}
	e := bits.Len64(v) - 1 // top set bit; e >= histSubBits
	sub := int(v>>(uint(e)-histSubBits+1)) - histHalf
	return 1<<histSubBits + (e-histSubBits)*histHalf + sub
}

// histLower returns the smallest value mapping to bucket i.
func histLower(i int) uint64 {
	if i < 1<<histSubBits {
		return uint64(i)
	}
	i -= 1 << histSubBits
	e := i/histHalf + histSubBits
	sub := i % histHalf
	return uint64(histHalf+sub) << (uint(e) - histSubBits + 1)
}

// histUpper returns one past the largest value mapping to bucket i.
func histUpper(i int) uint64 {
	if i < 1<<histSubBits {
		return uint64(i) + 1
	}
	return histLower(i + 1)
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) { h.RecordN(v, 1) }

// RecordN adds n identical observations (n == 0 is a no-op). Used by the
// runtime's sampled instrumentation to account a whole micro-batch with a
// single atomic round-trip.
func (h *Histogram) RecordN(v, n uint64) {
	if n == 0 {
		return
	}
	h.counts[histIndex(v)].Add(n)
	h.total.Add(n)
	h.sum.Add(v * n)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Mean returns the exact mean of recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) as the midpoint of the
// bucket holding the ceil(q*n)-th observation; relative error is bounded by
// HistogramQuantileErr for values >= 2^histSubBits and exact below.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			lo, hi := histLower(i), histUpper(i)
			if hi <= lo { // top octave: histUpper overflowed uint64
				return float64(h.max.Load())
			}
			return float64(lo+hi-1) / 2
		}
	}
	return float64(h.max.Load())
}

// HistogramBucket is one populated bucket of a histogram snapshot.
type HistogramBucket struct {
	// Lower and Upper bound the bucket as the half-open interval
	// [Lower, Upper).
	Lower, Upper uint64
	// Count is the number of observations in the bucket.
	Count uint64
}

// Buckets returns the populated buckets in ascending value order.
func (h *Histogram) Buckets() []HistogramBucket {
	var out []HistogramBucket
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			out = append(out, HistogramBucket{Lower: histLower(i), Upper: histUpper(i), Count: c})
		}
	}
	return out
}

// HistogramSummary is a point-in-time digest of a histogram used by
// snapshots and the metrics endpoints.
type HistogramSummary struct {
	Count         uint64  `json:"count"`
	Sum           uint64  `json:"sum"`
	Max           uint64  `json:"max"`
	Mean          float64 `json:"mean"`
	P50, P90, P99 float64 `json:"-"`
	// Quantiles repeats P50/P90/P99 keyed for JSON stability.
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Summary digests the histogram (quantiles estimated per Quantile).
func (h *Histogram) Summary() HistogramSummary {
	s := HistogramSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Quantiles = map[string]float64{"p50": s.P50, "p90": s.P90, "p99": s.P99}
	}
	return s
}
