package operators

import (
	"math"
	"testing"

	"spinstreams/internal/core"
)

// collect runs op on the inputs and returns everything it emits.
func collect(op Operator, inputs ...Tuple) []Tuple {
	var out []Tuple
	for _, in := range inputs {
		op.Process(in, func(t Tuple) { out = append(out, t) })
	}
	return out
}

func tup(fields ...float64) Tuple { return Tuple{Fields: fields} }

func TestCatalogComplete(t *testing.T) {
	names := Catalog()
	if len(names) != 20 {
		t.Fatalf("catalog has %d operators, want 20: %v", len(names), names)
	}
	for _, name := range names {
		op, err := Build(Spec{Impl: name})
		if err != nil {
			t.Errorf("Build(%s): %v", name, err)
			continue
		}
		if op.Name() != name {
			t.Errorf("Build(%s).Name() = %s", name, op.Name())
		}
		meta := op.Meta()
		if meta.Kind < core.KindSource || meta.Kind > core.KindSink {
			t.Errorf("%s: invalid kind %v", name, meta.Kind)
		}
		clone := op.Clone()
		if clone == nil || clone.Name() != name {
			t.Errorf("%s: bad clone", name)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build(Spec{Impl: "nope"}); err == nil {
		t.Fatal("unknown impl accepted")
	}
}

func TestIdentity(t *testing.T) {
	out := collect(MustBuild(Spec{Impl: "identity"}), tup(1, 2))
	if len(out) != 1 || out[0].Field(0) != 1 || out[0].Field(1) != 2 {
		t.Fatalf("out = %v", out)
	}
}

func TestScale(t *testing.T) {
	out := collect(MustBuild(Spec{Impl: "scale", Param: 3}), tup(1, -2))
	if out[0].Field(0) != 3 || out[0].Field(1) != -6 {
		t.Fatalf("out = %v", out[0].Fields)
	}
}

func TestScaleDoesNotAliasInput(t *testing.T) {
	in := tup(1, 2)
	out := collect(MustBuild(Spec{Impl: "scale", Param: 2}), in)
	if in.Fields[0] != 1 {
		t.Fatal("scale mutated its input")
	}
	out[0].Fields[0] = 99
	if in.Fields[0] != 1 {
		t.Fatal("output aliases input")
	}
}

func TestAffine(t *testing.T) {
	out := collect(MustBuild(Spec{Impl: "affine", Param: 2}), tup(3))
	if out[0].Field(0) != 7 { // 2*3+1
		t.Fatalf("affine(3) = %v, want 7", out[0].Field(0))
	}
}

func TestMagnitude(t *testing.T) {
	out := collect(MustBuild(Spec{Impl: "magnitude"}), tup(3, 4))
	fields := out[0].Fields
	if len(fields) != 3 || math.Abs(fields[2]-5) > 1e-12 {
		t.Fatalf("magnitude(3,4) = %v", fields)
	}
}

func TestNormalize(t *testing.T) {
	out := collect(MustBuild(Spec{Impl: "normalize"}), tup(3, 4), tup(0, 0))
	if math.Abs(out[0].Field(0)-0.6) > 1e-12 || math.Abs(out[0].Field(1)-0.8) > 1e-12 {
		t.Fatalf("normalize(3,4) = %v", out[0].Fields)
	}
	if out[1].Field(0) != 0 {
		t.Fatalf("normalize(0,0) = %v", out[1].Fields)
	}
}

func TestThresholdFilter(t *testing.T) {
	op := MustBuild(Spec{Impl: "threshold-filter", Param: 0.5})
	out := collect(op, tup(0.4), tup(0.6), tup(0.5))
	if len(out) != 1 || out[0].Field(0) != 0.6 {
		t.Fatalf("out = %v", out)
	}
	if sel := op.Meta().OutputSelectivity; math.Abs(sel-0.5) > 1e-12 {
		t.Errorf("selectivity = %v, want 0.5", sel)
	}
}

func TestRangeFilter(t *testing.T) {
	op := MustBuild(Spec{Impl: "range-filter", Param: 0.6}) // [0.2, 0.8)
	out := collect(op, tup(0.1), tup(0.2), tup(0.5), tup(0.8))
	if len(out) != 2 {
		t.Fatalf("passed %d tuples, want 2", len(out))
	}
}

func TestSamplerRate(t *testing.T) {
	op := MustBuild(Spec{Impl: "sampler", Param: 0.25, Seed: 9})
	n := 0
	const total = 100000
	for i := 0; i < total; i++ {
		op.Process(tup(1), func(Tuple) { n++ })
	}
	if rate := float64(n) / total; math.Abs(rate-0.25) > 0.01 {
		t.Errorf("pass rate = %v, want ~0.25", rate)
	}
	// Clones must not replay the same random stream.
	clone := op.Clone().(*sampler)
	if clone.seed == op.(*sampler).seed {
		t.Error("clone shares RNG seed with original")
	}
}

func TestSplitter(t *testing.T) {
	out := collect(MustBuild(Spec{Impl: "splitter", K: 4}), tup(7))
	if len(out) != 4 {
		t.Fatalf("emitted %d, want 4", len(out))
	}
	for i, o := range out {
		if o.Field(1) != float64(i) {
			t.Errorf("shard %d tagged %v", i, o.Field(1))
		}
	}
}

func TestProjection(t *testing.T) {
	out := collect(MustBuild(Spec{Impl: "projection", K: 2}), tup(1, 2, 3, 4))
	if len(out[0].Fields) != 2 {
		t.Fatalf("fields = %v", out[0].Fields)
	}
	// Wider than the tuple: keep everything.
	out = collect(MustBuild(Spec{Impl: "projection", K: 9}), tup(1))
	if len(out[0].Fields) != 1 {
		t.Fatalf("fields = %v", out[0].Fields)
	}
}

func TestKeyBy(t *testing.T) {
	op := MustBuild(Spec{Impl: "keyby", NumKeys: 8})
	out := collect(op, tup(0.123), tup(0.123), tup(0.999))
	if out[0].Key != out[1].Key {
		t.Error("equal fields produced different keys")
	}
	if out[0].Key >= 8 || out[2].Key >= 8 {
		t.Errorf("keys out of domain: %d, %d", out[0].Key, out[2].Key)
	}
}

func TestWindowedSum(t *testing.T) {
	op := MustBuild(Spec{Impl: "wsum", WindowLen: 3, Slide: 3, NumKeys: 4})
	var outs []Tuple
	for i := 1; i <= 6; i++ {
		op.Process(Tuple{Key: 1, Fields: []float64{float64(i)}}, func(t Tuple) { outs = append(outs, t) })
	}
	if len(outs) != 2 {
		t.Fatalf("fired %d times, want 2", len(outs))
	}
	if outs[0].Field(0) != 6 || outs[1].Field(0) != 15 {
		t.Fatalf("sums = %v, %v; want 6, 15", outs[0].Field(0), outs[1].Field(0))
	}
}

func TestWindowedSumPerKeyIsolation(t *testing.T) {
	op := MustBuild(Spec{Impl: "wsum", WindowLen: 2, Slide: 2})
	var outs []Tuple
	feed := func(key uint64, v float64) {
		op.Process(Tuple{Key: key, Fields: []float64{v}}, func(t Tuple) { outs = append(outs, t) })
	}
	feed(1, 10)
	feed(2, 100)
	feed(1, 20)  // key 1 fires: 30
	feed(2, 200) // key 2 fires: 300
	if len(outs) != 2 || outs[0].Field(0) != 30 || outs[1].Field(0) != 300 {
		t.Fatalf("outs = %v", outs)
	}
}

func TestWMA(t *testing.T) {
	op := MustBuild(Spec{Impl: "wma", WindowLen: 2, Slide: 2})
	var got float64
	op.Process(Tuple{Key: 1, Fields: []float64{1}}, func(Tuple) {})
	op.Process(Tuple{Key: 1, Fields: []float64{4}}, func(t Tuple) { got = t.Field(0) })
	want := (1.0*1 + 2.0*4) / 3.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("wma = %v, want %v", got, want)
	}
}

func TestWindowedMaxMin(t *testing.T) {
	max := MustBuild(Spec{Impl: "wmax", WindowLen: 3, Slide: 3})
	min := MustBuild(Spec{Impl: "wmin", WindowLen: 3, Slide: 3})
	var gotMax, gotMin float64
	for _, v := range []float64{5, -2, 3} {
		max.Process(Tuple{Fields: []float64{v}}, func(t Tuple) { gotMax = t.Field(0) })
		min.Process(Tuple{Fields: []float64{v}}, func(t Tuple) { gotMin = t.Field(0) })
	}
	if gotMax != 5 || gotMin != -2 {
		t.Fatalf("max = %v, min = %v", gotMax, gotMin)
	}
}

func TestWindowedQuantile(t *testing.T) {
	op := MustBuild(Spec{Impl: "wquantile", WindowLen: 5, Slide: 5, Param: 0.5})
	var got float64
	for _, v := range []float64{9, 1, 5, 3, 7} {
		op.Process(Tuple{Fields: []float64{v}}, func(t Tuple) { got = t.Field(0) })
	}
	if got != 5 {
		t.Fatalf("median = %v, want 5", got)
	}
}

func TestSkyline(t *testing.T) {
	op := MustBuild(Spec{Impl: "skyline", WindowLen: 4, Slide: 4, K: 2})
	points := [][]float64{{1, 1}, {2, 2}, {0.5, 3}, {1.5, 1.5}}
	var got float64
	for _, p := range points {
		op.Process(Tuple{Fields: p}, func(t Tuple) { got = t.Field(0) })
	}
	// Frontier: (2,2) and (0.5,3). (1,1) and (1.5,1.5) dominated by (2,2).
	if got != 2 {
		t.Fatalf("frontier size = %v, want 2", got)
	}
}

func TestDominates(t *testing.T) {
	tests := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{2, 2}, []float64{1, 1}, true},
		{[]float64{1, 1}, []float64{1, 1}, false},
		{[]float64{2, 1}, []float64{1, 2}, false},
		{[]float64{2, 2}, []float64{2, 1}, true},
	}
	for _, tc := range tests {
		if got := dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("dominates(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestTopK(t *testing.T) {
	op := MustBuild(Spec{Impl: "topk", WindowLen: 5, Slide: 5, K: 3})
	var got []float64
	for _, v := range []float64{1, 9, 4, 7, 2} {
		op.Process(Tuple{Fields: []float64{v}}, func(t Tuple) { got = t.Fields })
	}
	want := []float64{9, 7, 4}
	if len(got) != 3 {
		t.Fatalf("topk = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topk = %v, want %v", got, want)
		}
	}
}

func TestBandJoinMatches(t *testing.T) {
	op := MustBuild(Spec{Impl: "bandjoin", WindowLen: 10, Param: 0.1})
	var outs []Tuple
	emit := func(t Tuple) { outs = append(outs, t) }
	// Left side: 0.50; right side probes with 0.55 (match) and 0.90 (miss).
	op.Process(Tuple{Port: 0, Fields: []float64{0.50}}, emit)
	op.Process(Tuple{Port: 1, Fields: []float64{0.55}}, emit)
	op.Process(Tuple{Port: 1, Fields: []float64{0.90}}, emit)
	if len(outs) != 1 {
		t.Fatalf("matches = %d, want 1", len(outs))
	}
	if math.Abs(outs[0].Field(2)-0.05) > 1e-12 {
		t.Fatalf("distance = %v, want 0.05", outs[0].Field(2))
	}
}

func TestBandJoinSidesByKeyParity(t *testing.T) {
	op := MustBuild(Spec{Impl: "bandjoin", WindowLen: 10, Param: 0.2})
	var outs []Tuple
	emit := func(t Tuple) { outs = append(outs, t) }
	op.Process(Tuple{Key: 2, Fields: []float64{0.5}}, emit) // even -> left
	op.Process(Tuple{Key: 3, Fields: []float64{0.6}}, emit) // odd -> right, matches
	if len(outs) != 1 {
		t.Fatalf("matches = %d, want 1", len(outs))
	}
}

func TestDedup(t *testing.T) {
	op := MustBuild(Spec{Impl: "dedup", WindowLen: 2, NumKeys: 8})
	var outs []Tuple
	emit := func(t Tuple) { outs = append(outs, t) }
	op.Process(Tuple{Key: 1}, emit) // new -> pass
	op.Process(Tuple{Key: 1}, emit) // dup within horizon -> drop
	op.Process(Tuple{Key: 2}, emit) // new -> pass
	op.Process(Tuple{Key: 3}, emit) // new -> pass
	op.Process(Tuple{Key: 1}, emit) // horizon expired -> pass
	if len(outs) != 4 {
		t.Fatalf("passed %d, want 4", len(outs))
	}
}

func TestClonesShareNoState(t *testing.T) {
	stateful := []string{"wsum", "wma", "wmax", "wmin", "wquantile", "skyline", "topk", "bandjoin", "dedup"}
	for _, name := range stateful {
		op := MustBuild(Spec{Impl: name, WindowLen: 2, Slide: 2})
		// Warm the original's state.
		for i := 0; i < 5; i++ {
			op.Process(Tuple{Key: 1, Fields: []float64{1, 1}}, func(Tuple) {})
		}
		clone := op.Clone()
		fired := false
		// A fresh clone must not fire on its first input (empty windows).
		clone.Process(Tuple{Key: 1, Fields: []float64{1, 1}}, func(Tuple) { fired = true })
		if fired && name != "dedup" && name != "bandjoin" {
			t.Errorf("%s: clone fired on first input; state shared?", name)
		}
	}
}

func TestTupleField(t *testing.T) {
	tp := tup(1, 2)
	if tp.Field(0) != 1 || tp.Field(1) != 2 || tp.Field(2) != 0 || tp.Field(-1) != 0 {
		t.Fatal("Field bounds handling broken")
	}
}

func TestGenerator(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{Seed: 11, NumKeys: 16, NumFields: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		tp := g.Next()
		if tp.Key >= 16 {
			t.Fatalf("key %d out of domain", tp.Key)
		}
		if len(tp.Fields) != 2 {
			t.Fatalf("fields = %v", tp.Fields)
		}
		if tp.Seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", tp.Seq, i+1)
		}
		seen[tp.Key]++
	}
	// ZipF skew: key 0 must be the most frequent.
	for k, c := range seen {
		if k != 0 && c > seen[0] {
			t.Errorf("key %d more frequent than key 0 (%d > %d)", k, c, seen[0])
		}
	}
	freqs := g.KeyFrequencies()
	sum := 0.0
	for _, f := range freqs {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("frequencies sum to %v", sum)
	}
	// Determinism.
	g2, _ := NewGenerator(GeneratorConfig{Seed: 11, NumKeys: 16, NumFields: 2})
	g1, _ := NewGenerator(GeneratorConfig{Seed: 11, NumKeys: 16, NumFields: 2})
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Key != b.Key || a.Field(0) != b.Field(0) {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestMetaSelectivityConsistency(t *testing.T) {
	// Windowed aggregates: input selectivity equals the slide.
	op := MustBuild(Spec{Impl: "wsum", WindowLen: 100, Slide: 7})
	if got := op.Meta().InputSelectivity; got != 7 {
		t.Errorf("wsum input selectivity = %v, want 7", got)
	}
	// Splitter: output selectivity equals the fan-out.
	op = MustBuild(Spec{Impl: "splitter", K: 5})
	if got := op.Meta().OutputSelectivity; got != 5 {
		t.Errorf("splitter output selectivity = %v, want 5", got)
	}
}
