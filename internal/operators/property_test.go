package operators

import (
	"math"
	"testing"
	"testing/quick"

	"spinstreams/internal/core"
)

// TestStatelessOperatorsAreDeterministic: every stateless operator except
// the sampler must produce identical output for identical input, on both
// the original and a clone.
func TestStatelessOperatorsAreDeterministic(t *testing.T) {
	for _, name := range []string{"identity", "scale", "affine", "magnitude",
		"normalize", "threshold-filter", "range-filter", "splitter", "projection", "keyby"} {
		t.Run(name, func(t *testing.T) {
			f := func(fields []float64, key uint64) bool {
				if len(fields) > 16 {
					fields = fields[:16]
				}
				for i, v := range fields {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						fields[i] = 0.5
					}
				}
				in := Tuple{Key: key, Fields: fields}
				a := MustBuild(Spec{Impl: name})
				b := a.Clone()
				outA := collect(a, in)
				outB := collect(b, in)
				if len(outA) != len(outB) {
					return false
				}
				for i := range outA {
					if len(outA[i].Fields) != len(outB[i].Fields) {
						return false
					}
					for j := range outA[i].Fields {
						va, vb := outA[i].Fields[j], outB[i].Fields[j]
						if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFiltersNeverModifyTuples: filters either pass the tuple unchanged or
// drop it — they never alter fields.
func TestFiltersNeverModifyTuples(t *testing.T) {
	for _, name := range []string{"threshold-filter", "range-filter", "sampler"} {
		t.Run(name, func(t *testing.T) {
			op := MustBuild(Spec{Impl: name, Param: 0.5, Seed: 9})
			f := func(v float64, key uint64) bool {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0.25
				}
				in := Tuple{Key: key, Fields: []float64{v, 7}}
				outs := collect(op, in)
				if len(outs) > 1 {
					return false
				}
				if len(outs) == 1 {
					o := outs[0]
					return o.Key == key && o.Field(0) == v && o.Field(1) == 7
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSplitterAlwaysEmitsK: the splitter's output count is exactly its
// configured fan-out, matching its declared selectivity.
func TestSplitterAlwaysEmitsK(t *testing.T) {
	f := func(kRaw uint8, v float64) bool {
		k := 1 + int(kRaw)%6
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 1
		}
		op := MustBuild(Spec{Impl: "splitter", K: k})
		outs := collect(op, Tuple{Fields: []float64{v}})
		return len(outs) == k && op.Meta().OutputSelectivity == float64(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAggregatesFireAtDeclaredCadence: every windowed aggregate fires
// exactly once per slide items (per key) at steady state.
func TestAggregatesFireAtDeclaredCadence(t *testing.T) {
	for _, name := range []string{"wma", "wsum", "wmax", "wmin", "wquantile"} {
		t.Run(name, func(t *testing.T) {
			f := func(lenRaw, slideRaw uint8) bool {
				length := 2 + int(lenRaw)%30
				slide := 1 + int(slideRaw)%10
				op := MustBuild(Spec{Impl: name, WindowLen: length, Slide: slide, NumKeys: 4})
				n := length + slide*20
				fires := 0
				for i := 0; i < n; i++ {
					op.Process(Tuple{Key: 1, Fields: []float64{float64(i)}},
						func(Tuple) { fires++ })
				}
				want := 1 + (n-length)/slide
				return fires == want
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAggregateResultsWithinWindowRange: windowed min/max/quantile results
// are always values that appeared in the window.
func TestAggregateResultsWithinWindowRange(t *testing.T) {
	for _, name := range []string{"wmax", "wmin", "wquantile"} {
		op := MustBuild(Spec{Impl: name, WindowLen: 8, Slide: 2, NumKeys: 2})
		seen := map[float64]bool{}
		ok := true
		for i := 0; i < 200; i++ {
			v := float64((i*37)%101) / 10
			seen[v] = true
			op.Process(Tuple{Key: 0, Fields: []float64{v}}, func(out Tuple) {
				if !seen[out.Field(0)] {
					ok = false
				}
			})
		}
		if !ok {
			t.Errorf("%s emitted a value never fed to it", name)
		}
	}
}

// TestMetaKindsMatchCatalogClasses: the catalog's state classes are
// consistent with the optimizer's expectations.
func TestMetaKindsMatchCatalogClasses(t *testing.T) {
	wantKinds := map[string]core.Kind{
		"identity": core.KindStateless, "scale": core.KindStateless,
		"affine": core.KindStateless, "magnitude": core.KindStateless,
		"normalize": core.KindStateless, "threshold-filter": core.KindStateless,
		"range-filter": core.KindStateless, "sampler": core.KindStateless,
		"splitter": core.KindStateless, "projection": core.KindStateless,
		"keyby": core.KindStateless,
		"wma":   core.KindPartitionedStateful, "wsum": core.KindPartitionedStateful,
		"wmax": core.KindPartitionedStateful, "wmin": core.KindPartitionedStateful,
		"wquantile": core.KindPartitionedStateful, "dedup": core.KindPartitionedStateful,
		"skyline": core.KindStateful, "topk": core.KindStateful,
		"bandjoin": core.KindStateful,
	}
	for name, want := range wantKinds {
		op := MustBuild(Spec{Impl: name})
		if got := op.Meta().Kind; got != want {
			t.Errorf("%s: kind %v, want %v", name, got, want)
		}
	}
	if len(wantKinds) != len(Catalog()) {
		t.Errorf("test covers %d operators, catalog has %d", len(wantKinds), len(Catalog()))
	}
}
