package operators

import (
	"sort"

	"spinstreams/internal/window"
)

// KeyedState is implemented by partitioned-stateful operators whose
// per-key state can be moved between replicas while a topology runs. The
// live reconfigurer uses it to migrate the keys whose replica assignment
// changed when an operator is rescaled: it exports each moved key from
// the old owner's paused instance and imports it into the new owner's.
//
// The exported value is opaque to the runtime; only a matching operator
// implementation needs to understand it. Both methods are called while
// the owning station is paused, so implementations need no locking.
type KeyedState interface {
	// StateKeys returns the keys currently holding state, in ascending
	// order so migrations are deterministic.
	StateKeys() []uint64
	// ExportKey removes and returns one key's state, or nil when the key
	// holds none.
	ExportKey(key uint64) any
	// ImportKey installs state previously returned by ExportKey.
	ImportKey(key uint64, state any)
}

var _ KeyedState = (*aggregate)(nil)

// StateKeys implements KeyedState.
func (a *aggregate) StateKeys() []uint64 {
	keys := make([]uint64, 0, len(a.state.byKey))
	for k := range a.state.byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// ExportKey implements KeyedState: the window itself is handed over, so a
// partially filled window keeps its buffered items across the migration.
func (a *aggregate) ExportKey(key uint64) any {
	w, ok := a.state.byKey[key]
	if !ok {
		return nil
	}
	delete(a.state.byKey, key)
	return w
}

// ImportKey implements KeyedState.
func (a *aggregate) ImportKey(key uint64, state any) {
	w, ok := state.(*window.Count[float64])
	if !ok || w == nil {
		return
	}
	a.state.byKey[key] = w
}
