// Package operators provides the library of real-world streaming operators
// used throughout the evaluation: tuple-by-tuple maps and filters, windowed
// aggregations (weighted moving average, sum, max, min, quantiles), spatial
// queries over windows (skyline, top-k) and band-joins on count windows —
// the same operator families Section 5.1 of the paper builds its testbed
// from.
//
// Operators implement a uniform Process(in, emit) contract (the analog of
// the paper's SS2Akka operatorFunction) and expose the static metadata the
// optimizer needs: state kind and input/output selectivity. Replicas for
// operator fission are created with Clone, which copies configuration but
// never state.
package operators

import (
	"fmt"
	"sort"

	"spinstreams/internal/core"
)

// Tuple is the unit of data flowing through a topology: a record of numeric
// attributes with a partitioning key and bookkeeping metadata.
type Tuple struct {
	// Key is the partitioning key used by partitioned-stateful operators.
	Key uint64
	// Seq is a monotonically increasing sequence number assigned by the
	// source; collectors use it to restore ordering after fission.
	Seq uint64
	// Port identifies which logical input of the operator the tuple
	// arrived on (0 for single-input operators); band-joins distinguish
	// their two sides with it.
	Port int
	// Fields is the payload: a record of numeric attributes.
	Fields []float64
}

// Field returns Fields[i], or 0 when the tuple is narrower; operators stay
// total on malformed inputs instead of panicking.
func (t Tuple) Field(i int) float64 {
	if i < 0 || i >= len(t.Fields) {
		return 0
	}
	return t.Fields[i]
}

// Emit delivers an output tuple to the runtime, which routes it downstream.
type Emit func(Tuple)

// Meta is the static profile of an operator: everything the cost models
// need to know about it besides its measured service time.
type Meta struct {
	// Kind is the operator's state class.
	Kind core.Kind
	// InputSelectivity is the average number of inputs consumed per
	// output (0 means 1).
	InputSelectivity float64
	// OutputSelectivity is the average number of outputs produced per
	// input (0 means 1).
	OutputSelectivity float64
	// NumKeys is the size of the key domain for partitioned-stateful
	// operators, 0 otherwise.
	NumKeys int
}

// Operator is a deployable stream operator. Implementations are not safe
// for concurrent use: the runtime guarantees that each instance processes
// one tuple at a time, exactly like an Akka actor's mailbox discipline.
type Operator interface {
	// Name returns the implementation name the operator was built from.
	Name() string
	// Meta returns the operator's static profile.
	Meta() Meta
	// Process consumes one input tuple and emits zero or more results.
	Process(in Tuple, emit Emit)
	// Clone returns a fresh replica with the same configuration and empty
	// state, for operator fission.
	Clone() Operator
}

// Spec selects and configures an operator implementation by name. It is
// the in-process analog of the paper's XML operator attributes plus .class
// reference.
type Spec struct {
	// Impl names the implementation (see Catalog).
	Impl string
	// WindowLen and Slide configure windowed operators.
	WindowLen, Slide int
	// Param is an implementation-specific scalar (threshold, band width,
	// scale factor, quantile, sampling rate...).
	Param float64
	// K configures cardinalities (top-k's k, splitter fan-out, projection
	// width).
	K int
	// NumKeys is the key-domain size for partitioned-stateful operators.
	NumKeys int
	// Seed makes randomized operators (sampler) deterministic.
	Seed uint64
}

// builder constructs an operator from a spec.
type builder func(Spec) (Operator, error)

// catalog is the registry of the 20 real-world operator implementations.
var catalog = map[string]builder{
	"identity":         newIdentity,
	"scale":            newScale,
	"affine":           newAffine,
	"magnitude":        newMagnitude,
	"normalize":        newNormalize,
	"threshold-filter": newThresholdFilter,
	"range-filter":     newRangeFilter,
	"sampler":          newSampler,
	"splitter":         newSplitter,
	"projection":       newProjection,
	"keyby":            newKeyBy,
	"wma":              newWMA,
	"wsum":             newWindowedSum,
	"wmax":             newWindowedMax,
	"wmin":             newWindowedMin,
	"wquantile":        newWindowedQuantile,
	"skyline":          newSkyline,
	"topk":             newTopK,
	"bandjoin":         newBandJoin,
	"dedup":            newDedup,
}

// Catalog returns the sorted names of all registered implementations.
func Catalog() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Build constructs the operator selected by spec.
func Build(spec Spec) (Operator, error) {
	b, ok := catalog[spec.Impl]
	if !ok {
		return nil, fmt.Errorf("operators: unknown implementation %q", spec.Impl)
	}
	return b(spec)
}

// MustBuild is Build that panics on error, for statically-known specs.
func MustBuild(spec Spec) Operator {
	op, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return op
}

func windowOf(spec Spec) (length, slide int) {
	length, slide = spec.WindowLen, spec.Slide
	if length <= 0 {
		length = 1000
	}
	if slide <= 0 {
		slide = 10
	}
	return length, slide
}

// quantileOf returns spec.Param clamped into (0, 1), defaulting to 0.5.
func quantileOf(spec Spec) float64 {
	q := spec.Param
	if q <= 0 || q >= 1 {
		return 0.5
	}
	return q
}

func dims(spec Spec) int {
	if spec.K > 0 {
		return spec.K
	}
	return 2
}
