package operators

import (
	"sort"

	"spinstreams/internal/core"
	"spinstreams/internal/window"
)

// keyedWindows lazily maintains one count window per partitioning key; the
// state layout that makes an operator partitioned-stateful.
type keyedWindows struct {
	length, slide int
	byKey         map[uint64]*window.Count[float64]
}

func newKeyedWindows(length, slide int) *keyedWindows {
	return &keyedWindows{length: length, slide: slide, byKey: make(map[uint64]*window.Count[float64])}
}

// add buffers v into key's window and returns (content, true) on fire.
func (kw *keyedWindows) add(key uint64, v float64, scratch []float64) ([]float64, bool) {
	w, ok := kw.byKey[key]
	if !ok {
		w = window.MustCount[float64](kw.length, kw.slide)
		kw.byKey[key] = w
	}
	if !w.Add(v) {
		return nil, false
	}
	return w.Snapshot(scratch[:0]), true
}

// aggregate is the shared machinery of the windowed aggregation operators:
// a partitioned-stateful count window per key plus a reduction function
// applied to the window content on every fire.
type aggregate struct {
	name    string
	length  int
	slide   int
	numKeys int
	// newReduce builds a fresh reduction closure; Clone re-invokes it so
	// replicas never share reduction scratch state.
	newReduce func() func([]float64) float64
	reduce    func([]float64) float64
	state     *keyedWindows
	scratch   []float64
}

func newAggregate(name string, spec Spec, newReduce func() func([]float64) float64) *aggregate {
	length, slide := windowOf(spec)
	numKeys := spec.NumKeys
	if numKeys <= 0 {
		numKeys = 64
	}
	return &aggregate{
		name:      name,
		length:    length,
		slide:     slide,
		numKeys:   numKeys,
		newReduce: newReduce,
		reduce:    newReduce(),
		state:     newKeyedWindows(length, slide),
		scratch:   make([]float64, 0, length),
	}
}

func (a *aggregate) Name() string { return a.name }

func (a *aggregate) Meta() Meta {
	return Meta{
		Kind:             core.KindPartitionedStateful,
		InputSelectivity: float64(a.slide),
		NumKeys:          a.numKeys,
	}
}

func (a *aggregate) Clone() Operator {
	c := *a
	c.state = newKeyedWindows(a.length, a.slide)
	c.scratch = make([]float64, 0, a.length)
	c.reduce = a.newReduce()
	return &c
}

func (a *aggregate) Process(in Tuple, emit Emit) {
	content, fired := a.state.add(in.Key, in.Field(0), a.scratch)
	if !fired {
		return
	}
	a.scratch = content[:0]
	out := in
	out.Fields = []float64{a.reduce(content)}
	emit(out)
}

// statelessReduce adapts a pure reduction to the factory contract.
func statelessReduce(f func([]float64) float64) func() func([]float64) float64 {
	return func() func([]float64) float64 { return f }
}

// newWMA builds the weighted moving average aggregation: recent items weigh
// linearly more than old ones.
func newWMA(spec Spec) (Operator, error) {
	return newAggregate("wma", spec, statelessReduce(func(xs []float64) float64 {
		num, den := 0.0, 0.0
		for i, x := range xs {
			w := float64(i + 1)
			num += w * x
			den += w
		}
		if den == 0 {
			return 0
		}
		return num / den
	})), nil
}

// newWindowedSum sums the window content.
func newWindowedSum(spec Spec) (Operator, error) {
	return newAggregate("wsum", spec, statelessReduce(func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	})), nil
}

// newWindowedMax reduces the window to its maximum.
func newWindowedMax(spec Spec) (Operator, error) {
	return newAggregate("wmax", spec, statelessReduce(func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		m := xs[0]
		for _, x := range xs[1:] {
			if x > m {
				m = x
			}
		}
		return m
	})), nil
}

// newWindowedMin reduces the window to its minimum.
func newWindowedMin(spec Spec) (Operator, error) {
	return newAggregate("wmin", spec, statelessReduce(func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		m := xs[0]
		for _, x := range xs[1:] {
			if x < m {
				m = x
			}
		}
		return m
	})), nil
}

// newWindowedQuantile computes the q-quantile (Param, default median) of
// the window by sorting a per-replica scratch copy.
func newWindowedQuantile(spec Spec) (Operator, error) {
	q := quantileOf(spec)
	return newAggregate("wquantile", spec, func() func([]float64) float64 {
		var buf []float64
		return func(xs []float64) float64 {
			buf = append(buf[:0], xs...)
			sort.Float64s(buf)
			if len(buf) == 0 {
				return 0
			}
			idx := int(q * float64(len(buf)-1))
			return buf[idx]
		}
	}), nil
}
