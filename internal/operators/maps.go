package operators

import (
	"math"

	"spinstreams/internal/core"
	"spinstreams/internal/stats"
)

// statelessMeta is the shared profile of tuple-by-tuple operators.
func statelessMeta(outSel float64) Meta {
	return Meta{Kind: core.KindStateless, OutputSelectivity: outSel}
}

// identity forwards tuples unchanged; the cheapest possible map, useful to
// model relay/routing stages.
type identity struct{}

func newIdentity(Spec) (Operator, error) { return identity{}, nil }

func (identity) Name() string                { return "identity" }
func (identity) Meta() Meta                  { return statelessMeta(1) }
func (identity) Clone() Operator             { return identity{} }
func (identity) Process(in Tuple, emit Emit) { emit(in) }

// scale multiplies every field by a constant factor.
type scale struct{ factor float64 }

func newScale(spec Spec) (Operator, error) {
	f := spec.Param
	if f == 0 {
		f = 2
	}
	return &scale{factor: f}, nil
}

func (s *scale) Name() string    { return "scale" }
func (s *scale) Meta() Meta      { return statelessMeta(1) }
func (s *scale) Clone() Operator { c := *s; return &c }
func (s *scale) Process(in Tuple, emit Emit) {
	out := in
	out.Fields = make([]float64, len(in.Fields))
	for i, f := range in.Fields {
		out.Fields[i] = f * s.factor
	}
	emit(out)
}

// affine applies a*x + b to every field; models unit conversions and
// calibration stages.
type affine struct{ a, b float64 }

func newAffine(spec Spec) (Operator, error) {
	a := spec.Param
	if a == 0 {
		a = 1.5
	}
	return &affine{a: a, b: 1}, nil
}

func (op *affine) Name() string    { return "affine" }
func (op *affine) Meta() Meta      { return statelessMeta(1) }
func (op *affine) Clone() Operator { c := *op; return &c }
func (op *affine) Process(in Tuple, emit Emit) {
	out := in
	out.Fields = make([]float64, len(in.Fields))
	for i, f := range in.Fields {
		out.Fields[i] = op.a*f + op.b
	}
	emit(out)
}

// magnitude appends the Euclidean norm of the fields as a derived
// attribute; a typical feature-extraction map.
type magnitude struct{}

func newMagnitude(Spec) (Operator, error) { return magnitude{}, nil }

func (magnitude) Name() string    { return "magnitude" }
func (magnitude) Meta() Meta      { return statelessMeta(1) }
func (magnitude) Clone() Operator { return magnitude{} }
func (magnitude) Process(in Tuple, emit Emit) {
	sum := 0.0
	for _, f := range in.Fields {
		sum += f * f
	}
	out := in
	out.Fields = append(append([]float64(nil), in.Fields...), math.Sqrt(sum))
	emit(out)
}

// normalize rescales the fields to unit norm; zero vectors pass unchanged.
type normalize struct{}

func newNormalize(Spec) (Operator, error) { return normalize{}, nil }

func (normalize) Name() string    { return "normalize" }
func (normalize) Meta() Meta      { return statelessMeta(1) }
func (normalize) Clone() Operator { return normalize{} }
func (normalize) Process(in Tuple, emit Emit) {
	sum := 0.0
	for _, f := range in.Fields {
		sum += f * f
	}
	if sum == 0 {
		emit(in)
		return
	}
	norm := math.Sqrt(sum)
	out := in
	out.Fields = make([]float64, len(in.Fields))
	for i, f := range in.Fields {
		out.Fields[i] = f / norm
	}
	emit(out)
}

// thresholdFilter passes tuples whose first field exceeds the threshold.
// Its output selectivity is the expected pass rate, which the profiler
// measures; the default assumes a uniform [0,1) field and threshold 0.5.
type thresholdFilter struct {
	threshold float64
	passRate  float64
}

func newThresholdFilter(spec Spec) (Operator, error) {
	th := spec.Param
	if th == 0 {
		th = 0.5
	}
	pass := 1 - th
	if pass <= 0 || pass > 1 {
		pass = 0.5
	}
	return &thresholdFilter{threshold: th, passRate: pass}, nil
}

func (f *thresholdFilter) Name() string    { return "threshold-filter" }
func (f *thresholdFilter) Meta() Meta      { return statelessMeta(f.passRate) }
func (f *thresholdFilter) Clone() Operator { c := *f; return &c }
func (f *thresholdFilter) Process(in Tuple, emit Emit) {
	if in.Field(0) > f.threshold {
		emit(in)
	}
}

// rangeFilter passes tuples whose first field lies in [lo, hi).
type rangeFilter struct {
	lo, hi   float64
	passRate float64
}

func newRangeFilter(spec Spec) (Operator, error) {
	width := spec.Param
	if width <= 0 || width > 1 {
		width = 0.6
	}
	lo := (1 - width) / 2
	return &rangeFilter{lo: lo, hi: lo + width, passRate: width}, nil
}

func (f *rangeFilter) Name() string    { return "range-filter" }
func (f *rangeFilter) Meta() Meta      { return statelessMeta(f.passRate) }
func (f *rangeFilter) Clone() Operator { c := *f; return &c }
func (f *rangeFilter) Process(in Tuple, emit Emit) {
	if v := in.Field(0); v >= f.lo && v < f.hi {
		emit(in)
	}
}

// sampler passes each tuple independently with probability rate; a
// load-shedding-style probabilistic filter.
type sampler struct {
	rate float64
	rng  *stats.RNG
	seed uint64
}

func newSampler(spec Spec) (Operator, error) {
	rate := spec.Param
	if rate <= 0 || rate > 1 {
		rate = 0.25
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	return &sampler{rate: rate, rng: stats.NewRNG(seed), seed: seed}, nil
}

func (s *sampler) Name() string { return "sampler" }
func (s *sampler) Meta() Meta   { return statelessMeta(s.rate) }
func (s *sampler) Clone() Operator {
	return &sampler{rate: s.rate, rng: stats.NewRNG(s.seed + 0x5bd1), seed: s.seed + 0x5bd1}
}
func (s *sampler) Process(in Tuple, emit Emit) {
	if s.rng.Float64() < s.rate {
		emit(in)
	}
}

// splitter emits k copies of each input, each tagged with a distinct shard
// field; models flatmap-style record expansion (output selectivity > 1).
type splitter struct{ k int }

func newSplitter(spec Spec) (Operator, error) {
	k := spec.K
	if k <= 0 {
		k = 3
	}
	return &splitter{k: k}, nil
}

func (s *splitter) Name() string    { return "splitter" }
func (s *splitter) Meta() Meta      { return statelessMeta(float64(s.k)) }
func (s *splitter) Clone() Operator { c := *s; return &c }
func (s *splitter) Process(in Tuple, emit Emit) {
	for i := 0; i < s.k; i++ {
		out := in
		out.Fields = append(append([]float64(nil), in.Fields...), float64(i))
		emit(out)
	}
}

// projection keeps only the first k fields; models column pruning.
type projection struct{ k int }

func newProjection(spec Spec) (Operator, error) {
	k := spec.K
	if k <= 0 {
		k = 1
	}
	return &projection{k: k}, nil
}

func (p *projection) Name() string    { return "projection" }
func (p *projection) Meta() Meta      { return statelessMeta(1) }
func (p *projection) Clone() Operator { c := *p; return &c }
func (p *projection) Process(in Tuple, emit Emit) {
	k := p.k
	if k > len(in.Fields) {
		k = len(in.Fields)
	}
	out := in
	out.Fields = append([]float64(nil), in.Fields[:k]...)
	emit(out)
}

// keyBy re-keys tuples by hashing the first field into a key domain of
// NumKeys values; the standard preparation stage ahead of keyed state.
type keyBy struct{ numKeys int }

func newKeyBy(spec Spec) (Operator, error) {
	n := spec.NumKeys
	if n <= 0 {
		n = 64
	}
	return &keyBy{numKeys: n}, nil
}

func (k *keyBy) Name() string    { return "keyby" }
func (k *keyBy) Meta() Meta      { return statelessMeta(1) }
func (k *keyBy) Clone() Operator { c := *k; return &c }
func (k *keyBy) Process(in Tuple, emit Emit) {
	out := in
	out.Key = uint64(math.Abs(in.Field(0))*1e6) % uint64(k.numKeys)
	emit(out)
}
