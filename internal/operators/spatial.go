package operators

import (
	"sort"

	"spinstreams/internal/core"
	"spinstreams/internal/window"
)

// skyline computes the Pareto frontier (maximization on every dimension) of
// the points in a count window: a point survives if no other point in the
// window dominates it on all dimensions. The state is a single window over
// the whole stream, so the operator is monolithically stateful — it cannot
// be replicated (Section 5.3 uses such operators to create unresolvable
// bottlenecks).
type skyline struct {
	dims    int
	win     *window.Count[[]float64]
	scratch [][]float64
}

func newSkyline(spec Spec) (Operator, error) {
	length, slide := windowOf(spec)
	return &skyline{
		dims: dims(spec),
		win:  window.MustCount[[]float64](length, slide),
	}, nil
}

func (s *skyline) Name() string { return "skyline" }

func (s *skyline) Meta() Meta {
	return Meta{Kind: core.KindStateful, InputSelectivity: float64(s.win.Slide())}
}

func (s *skyline) Clone() Operator {
	return &skyline{dims: s.dims, win: window.MustCount[[]float64](s.win.Length(), s.win.Slide())}
}

func (s *skyline) Process(in Tuple, emit Emit) {
	point := make([]float64, s.dims)
	for i := range point {
		point[i] = in.Field(i)
	}
	if !s.win.Add(point) {
		return
	}
	s.scratch = s.win.Snapshot(s.scratch[:0])
	frontier := s.frontierSize(s.scratch)
	out := in
	out.Fields = []float64{float64(frontier)}
	emit(out)
}

// frontierSize counts the non-dominated points; quadratic scan, the real
// cost profile of small-window skyline queries.
func (s *skyline) frontierSize(points [][]float64) int {
	count := 0
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			count++
		}
	}
	return count
}

// dominates reports whether a >= b on every dimension and a > b on at
// least one.
func dominates(a, b []float64) bool {
	strict := false
	for d := range a {
		if a[d] < b[d] {
			return false
		}
		if a[d] > b[d] {
			strict = true
		}
	}
	return strict
}

// topK maintains the k largest scores (first field) in a count window and
// emits the k-th best on every fire; a window-based top-k query as in
// Upsortable. Like skyline, its single global window makes it stateful.
type topK struct {
	k       int
	win     *window.Count[float64]
	scratch []float64
}

func newTopK(spec Spec) (Operator, error) {
	length, slide := windowOf(spec)
	k := spec.K
	if k <= 0 {
		k = 10
	}
	return &topK{k: k, win: window.MustCount[float64](length, slide)}, nil
}

func (t *topK) Name() string { return "topk" }

func (t *topK) Meta() Meta {
	return Meta{Kind: core.KindStateful, InputSelectivity: float64(t.win.Slide())}
}

func (t *topK) Clone() Operator {
	return &topK{k: t.k, win: window.MustCount[float64](t.win.Length(), t.win.Slide())}
}

func (t *topK) Process(in Tuple, emit Emit) {
	if !t.win.Add(in.Field(0)) {
		return
	}
	t.scratch = t.win.Snapshot(t.scratch[:0])
	sort.Sort(sort.Reverse(sort.Float64Slice(t.scratch)))
	k := t.k
	if k > len(t.scratch) {
		k = len(t.scratch)
	}
	out := in
	out.Fields = append([]float64(nil), t.scratch[:k]...)
	emit(out)
}
