package operators

import (
	"fmt"

	"spinstreams/internal/stats"
)

// Generator produces the synthetic input stream the sources of the testbed
// emit: tuples with uniform [0,1) numeric fields and keys drawn from a ZipF
// distribution over a fixed key domain (the paper generates key frequencies
// from random ZipF laws). It is deterministic for a given seed.
type Generator struct {
	rng       *stats.RNG
	keys      *stats.Zipf
	numFields int
	seq       uint64
	// arena is the unconsumed tail of a block allocation the payload
	// slices are carved from: one make per block instead of one per
	// tuple. Slices never overlap (each tuple owns its full-capacity
	// sub-slice), so in-place field mutation downstream stays safe; the
	// block is garbage once every tuple carved from it is.
	arena []float64
}

// arenaTuples is how many tuples' worth of payload one arena block holds.
const arenaTuples = 256

// GeneratorConfig configures a Generator.
type GeneratorConfig struct {
	// Seed makes the stream deterministic.
	Seed uint64
	// NumKeys is the key-domain size (default 64).
	NumKeys int
	// KeySkew is the ZipF exponent of the key distribution (default 1.1).
	KeySkew float64
	// NumFields is the number of payload attributes (default 3).
	NumFields int
}

// NewGenerator builds a generator.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	if cfg.NumKeys <= 0 {
		cfg.NumKeys = 64
	}
	if cfg.KeySkew <= 0 {
		cfg.KeySkew = 1.1
	}
	if cfg.NumFields <= 0 {
		cfg.NumFields = 3
	}
	rng := stats.NewRNG(cfg.Seed)
	keys, err := stats.NewZipf(rng.Fork(), cfg.NumKeys, cfg.KeySkew)
	if err != nil {
		return nil, fmt.Errorf("generator: %w", err)
	}
	return &Generator{rng: rng, keys: keys, numFields: cfg.NumFields}, nil
}

// Next returns the next synthetic tuple.
func (g *Generator) Next() Tuple {
	var t Tuple
	g.NextInto(&t)
	return t
}

// NextInto writes the next synthetic tuple in place — the zero-copy form
// the ring source uses to generate directly into reserved ring slots.
// Every Tuple field is assigned, so stale slot contents never leak. The
// stream is identical to repeated Next calls (same RNG draw order).
func (g *Generator) NextInto(t *Tuple) {
	if len(g.arena) < g.numFields {
		g.arena = make([]float64, g.numFields*arenaTuples)
	}
	fields := g.arena[:g.numFields:g.numFields]
	g.arena = g.arena[g.numFields:]
	for i := range fields {
		fields[i] = g.rng.Float64()
	}
	g.seq++
	t.Key = uint64(g.keys.Sample())
	t.Seq = g.seq
	t.Port = 0
	t.Fields = fields
}

// KeyFrequencies returns the probability mass function of the generated
// keys, the input the optimizer's key partitioning consumes.
func (g *Generator) KeyFrequencies() []float64 {
	return g.keys.Probabilities()
}
