package operators

import (
	"spinstreams/internal/core"
	"spinstreams/internal/window"
)

// bandJoin joins two input streams on a band predicate |a - b| <= band over
// count windows: each arriving tuple probes the opposite side's window and
// emits one result per match. Tuples are assigned to a side by their input
// Port (operators wired with two or more input edges receive distinct
// ports; with a single input the tuple key's parity decides, keeping the
// operator usable anywhere in a random topology).
//
// The two windows form monolithic state: the operator is stateful and
// cannot be replicated.
type bandJoin struct {
	band        float64
	left, right *window.Count[float64]
	matchRate   float64
	scratch     []float64
}

func newBandJoin(spec Spec) (Operator, error) {
	length, _ := windowOf(spec)
	band := spec.Param
	if band <= 0 {
		band = 0.05
	}
	// Expected matches per probe against a window of uniform [0,1)
	// values: about 2*band*length; profiled operators override this.
	matchRate := 2 * band * float64(length)
	return &bandJoin{
		band:      band,
		left:      window.MustCount[float64](length, 1),
		right:     window.MustCount[float64](length, 1),
		matchRate: matchRate,
	}, nil
}

func (j *bandJoin) Name() string { return "bandjoin" }

func (j *bandJoin) Meta() Meta {
	return Meta{Kind: core.KindStateful, OutputSelectivity: j.matchRate}
}

func (j *bandJoin) Clone() Operator {
	return &bandJoin{
		band:      j.band,
		left:      window.MustCount[float64](j.left.Length(), 1),
		right:     window.MustCount[float64](j.right.Length(), 1),
		matchRate: j.matchRate,
	}
}

func (j *bandJoin) Process(in Tuple, emit Emit) {
	v := in.Field(0)
	side := in.Port
	if side == 0 && in.Key%2 == 1 {
		side = 1
	}
	mine, other := j.left, j.right
	if side != 0 {
		mine, other = j.right, j.left
	}
	mine.Add(v)
	j.scratch = other.Snapshot(j.scratch[:0])
	for _, w := range j.scratch {
		d := v - w
		if d < 0 {
			d = -d
		}
		if d <= j.band {
			out := in
			out.Fields = []float64{v, w, d}
			emit(out)
		}
	}
}

// dedup suppresses tuples whose key was already seen within the last
// `WindowLen` arrivals; per-key state makes it partitioned-stateful. Its
// output selectivity is the expected novelty rate (Param, default 0.5).
type dedup struct {
	horizon     int
	numKeys     int
	noveltyRate float64
	lastSeen    map[uint64]uint64
	arrivals    uint64
}

func newDedup(spec Spec) (Operator, error) {
	horizon := spec.WindowLen
	if horizon <= 0 {
		horizon = 1000
	}
	numKeys := spec.NumKeys
	if numKeys <= 0 {
		numKeys = 64
	}
	rate := spec.Param
	if rate <= 0 || rate > 1 {
		rate = 0.5
	}
	return &dedup{
		horizon:     horizon,
		numKeys:     numKeys,
		noveltyRate: rate,
		lastSeen:    make(map[uint64]uint64),
	}, nil
}

func (d *dedup) Name() string { return "dedup" }

func (d *dedup) Meta() Meta {
	return Meta{
		Kind:              core.KindPartitionedStateful,
		OutputSelectivity: d.noveltyRate,
		NumKeys:           d.numKeys,
	}
}

func (d *dedup) Clone() Operator {
	c := *d
	c.lastSeen = make(map[uint64]uint64)
	c.arrivals = 0
	return &c
}

func (d *dedup) Process(in Tuple, emit Emit) {
	d.arrivals++
	last, seen := d.lastSeen[in.Key]
	d.lastSeen[in.Key] = d.arrivals
	if seen && d.arrivals-last <= uint64(d.horizon) {
		return
	}
	emit(in)
}
