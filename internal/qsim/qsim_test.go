package qsim

import (
	"math"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/plan"
	"spinstreams/internal/randtopo"
	"spinstreams/internal/stats"
)

func pipeline(t *testing.T, times ...float64) *core.Topology {
	t.Helper()
	topo := core.NewTopology()
	var prev core.OpID
	for i, st := range times {
		kind := core.KindStateless
		switch i {
		case 0:
			kind = core.KindSource
		case len(times) - 1:
			kind = core.KindSink
		}
		id := topo.MustAddOperator(core.Operator{
			Name: "s" + string(rune('A'+i)), Kind: kind, ServiceTime: st,
		})
		if i > 0 {
			topo.MustConnect(prev, id, 1)
		}
		prev = id
	}
	return topo
}

func TestSimulatePipelineNoBottleneck(t *testing.T) {
	topo := pipeline(t, 0.010, 0.002, 0.001)
	res, err := SimulateTopology(topo, nil, Config{Seed: 1, Horizon: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Source rate 100/s; downstream plenty fast: throughput ~100/s.
	if e := stats.RelErr(res.Throughput, 100); e > 0.05 {
		t.Errorf("throughput = %v, want ~100 (err %v)", res.Throughput, e)
	}
}

func TestSimulatePipelineBottleneck(t *testing.T) {
	topo := pipeline(t, 0.001, 0.004, 0.0001)
	res, err := SimulateTopology(topo, nil, Config{Seed: 2, Horizon: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Backpressure caps ingestion near the 250/s bottleneck rate.
	if e := stats.RelErr(res.Throughput, 250); e > 0.08 {
		t.Errorf("throughput = %v, want ~250 (err %v)", res.Throughput, e)
	}
	// The source must spend a large fraction of time blocked.
	src := res.Stations[0]
	if src.BlockedFrac < 0.4 {
		t.Errorf("source blocked %.2f of the time, want > 0.4", src.BlockedFrac)
	}
}

func TestSimulateDeterministicServiceMatchesModelTightly(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	a, err := core.SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateTopology(topo, nil, Config{Seed: 3, Horizon: 30, Service: Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(res.Throughput, a.Throughput()); e > 0.02 {
		t.Errorf("throughput = %v, predicted %v (err %v)", res.Throughput, a.Throughput(), e)
	}
	for op := 0; op < topo.Len(); op++ {
		if e := stats.RelErr(res.Departure[op], a.Delta[op]); e > 0.05 {
			t.Errorf("op %d departure = %v, predicted %v (err %v)", op, res.Departure[op], a.Delta[op], e)
		}
	}
}

func TestSimulatePaperTable2FusionDegradation(t *testing.T) {
	topo, sub := core.PaperExampleTopology(core.PaperExampleTable2)
	fused, report, err := core.Fuse(topo, sub, "F")
	if err != nil {
		t.Fatal(err)
	}
	before, err := SimulateTopology(topo, nil, Config{Seed: 4, Horizon: 30})
	if err != nil {
		t.Fatal(err)
	}
	after, err := SimulateTopology(fused, nil, Config{Seed: 4, Horizon: 30})
	if err != nil {
		t.Fatal(err)
	}
	// The model predicts ~1000 -> ~758; the simulation must reproduce the
	// degradation (paper measures 961 -> 753).
	if e := stats.RelErr(before.Throughput, report.ThroughputBefore); e > 0.08 {
		t.Errorf("before = %v, predicted %v", before.Throughput, report.ThroughputBefore)
	}
	if e := stats.RelErr(after.Throughput, report.ThroughputAfter); e > 0.08 {
		t.Errorf("after = %v, predicted %v", after.Throughput, report.ThroughputAfter)
	}
	if after.Throughput >= before.Throughput {
		t.Errorf("fusion did not degrade measured throughput: %v -> %v", before.Throughput, after.Throughput)
	}
}

func TestSimulateWithFission(t *testing.T) {
	topo := pipeline(t, 0.001, 0.0035, 0.0001)
	resBase, err := SimulateTopology(topo, nil, Config{Seed: 5, Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	fis, err := core.EliminateBottlenecks(topo, core.FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resFis, err := SimulateTopology(topo, fis.Analysis.Replicas, Config{Seed: 5, Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	if resFis.Throughput < resBase.Throughput*1.5 {
		t.Errorf("fission speedup too small: %v -> %v", resBase.Throughput, resFis.Throughput)
	}
	if e := stats.RelErr(resFis.Throughput, fis.Analysis.Throughput()); e > 0.08 {
		t.Errorf("fissioned throughput = %v, predicted %v (err %v)",
			resFis.Throughput, fis.Analysis.Throughput(), e)
	}
}

func TestSimulateSelectivity(t *testing.T) {
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	fm := topo.MustAddOperator(core.Operator{
		Name: "fm", Kind: core.KindStateless, ServiceTime: 0.0001, OutputSelectivity: 3,
	})
	win := topo.MustAddOperator(core.Operator{
		Name: "win", Kind: core.KindStateful, ServiceTime: 0.0001, InputSelectivity: 10,
	})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.00005})
	topo.MustConnect(src, fm, 1)
	topo.MustConnect(fm, win, 1)
	topo.MustConnect(win, sink, 1)

	a, err := core.SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateTopology(topo, nil, Config{Seed: 6, Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Flatmap triples the rate, window divides by 10: sink sees ~300/s.
	if e := stats.RelErr(res.Arrival[sink], a.Lambda[sink]); e > 0.05 {
		t.Errorf("sink arrival = %v, predicted %v", res.Arrival[sink], a.Lambda[sink])
	}
	if e := stats.RelErr(res.Departure[fm], a.Delta[fm]); e > 0.05 {
		t.Errorf("flatmap departure = %v, predicted %v", res.Departure[fm], a.Delta[fm])
	}
}

func TestSimulateDeterminism(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	r1, err := SimulateTopology(topo, nil, Config{Seed: 42, Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SimulateTopology(topo, nil, Config{Seed: 42, Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Throughput != r2.Throughput || r1.Events != r2.Events {
		t.Fatalf("same seed diverged: %v/%v events %d/%d",
			r1.Throughput, r2.Throughput, r1.Events, r2.Events)
	}
}

func TestSimulateBufferSizeInsensitivity(t *testing.T) {
	// The steady-state model ignores buffer sizes; beyond tiny mailboxes
	// the measured throughput must be insensitive to capacity.
	topo := pipeline(t, 0.001, 0.004, 0.0001)
	var prev float64
	for _, buf := range []int{16, 64, 256} {
		res, err := SimulateTopology(topo, nil, Config{Seed: 7, Horizon: 40, BufferSize: buf})
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 && stats.RelErr(res.Throughput, prev) > 0.05 {
			t.Errorf("buffer %d: throughput %v differs from %v", buf, res.Throughput, prev)
		}
		prev = res.Throughput
	}
}

func TestSimulateModelAccuracyOnTestbed(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed simulation is slow")
	}
	bed, err := randtopo.Testbed(randtopo.Config{Seed: 11}, 10)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]float64, 0, len(bed))
	for i, g := range bed {
		a, err := core.SteadyState(g.Topology)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		res, err := SimulateTopology(g.Topology, nil, Config{Seed: uint64(i), Horizon: 30})
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		errs = append(errs, stats.RelErr(res.Throughput, a.Throughput()))
	}
	sum := stats.Summarize(errs)
	// The paper reports <3% mean error; allow slack for the short horizon.
	if sum.Mean > 0.10 {
		t.Errorf("mean prediction error %v too high (errors %v)", sum.Mean, errs)
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(nil, Config{}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := Simulate(&plan.Plan{}, Config{}); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestSimulateFlowConservation(t *testing.T) {
	// Measured source departure ~= total sink departure (Prop 3.5).
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	res, err := SimulateTopology(topo, nil, Config{Seed: 8, Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	sinkRate := 0.0
	for _, s := range topo.Sinks() {
		sinkRate += res.Departure[s]
	}
	if math.Abs(sinkRate-res.Throughput) > 0.05*res.Throughput {
		t.Errorf("sink rate %v vs source rate %v", sinkRate, res.Throughput)
	}
}

// TestSimulateLatencyMatchesMM1: the simulator's measured mailbox waiting
// times should track the M/M/1 prediction at moderate utilization (the
// simulator's default service law is exponential).
func TestSimulateLatencyMatchesMM1(t *testing.T) {
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.002})
	mid := topo.MustAddOperator(core.Operator{Name: "mid", Kind: core.KindStateless, ServiceTime: 0.0012}) // rho 0.6
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0002})
	topo.MustConnect(src, mid, 1)
	topo.MustConnect(mid, sink, 1)

	est, err := core.EstimateLatency(topo, nil, core.MM1, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateTopology(topo, nil, Config{Seed: 20, Horizon: 120})
	if err != nil {
		t.Fatal(err)
	}
	// The source emits deterministically-spaced items under exponential
	// service, so arrivals at mid are not exactly Poisson; allow a loose
	// tolerance — the point is the order of magnitude and the load shape.
	if res.Wait[mid] <= 0 {
		t.Fatalf("measured wait = %v, want > 0", res.Wait[mid])
	}
	if e := stats.RelErr(res.Wait[mid], est.Wait[mid]); e > 0.5 {
		t.Errorf("mid wait measured %v vs predicted %v (err %.2f)", res.Wait[mid], est.Wait[mid], e)
	}
	// The lightly-loaded sink must wait far less than the loaded stage.
	if res.Wait[sink] >= res.Wait[mid] {
		t.Errorf("sink wait %v >= mid wait %v", res.Wait[sink], res.Wait[mid])
	}
}

// TestSimulateLatencyGrowsWithBuffers: with a saturated bottleneck, bigger
// mailboxes do not raise throughput but do raise queueing delay — the
// latency cost of backpressure headroom.
func TestSimulateLatencyGrowsWithBuffers(t *testing.T) {
	topo := pipeline(t, 0.001, 0.004, 0.0001)
	var prevWait float64
	for _, buf := range []int{4, 32, 256} {
		res, err := SimulateTopology(topo, nil, Config{Seed: 21, Horizon: 40, BufferSize: buf})
		if err != nil {
			t.Fatal(err)
		}
		if res.Wait[1] < prevWait {
			t.Errorf("buffer %d: wait %v below smaller buffer's %v", buf, res.Wait[1], prevWait)
		}
		prevWait = res.Wait[1]
	}
	if prevWait < 0.004*100 {
		t.Errorf("bottleneck wait %v suspiciously small for 256-slot mailbox", prevWait)
	}
}

// TestSimulateEdgeProbabilities: measured routing frequencies converge to
// the configured edge probabilities — the data-exchange profiling the
// paper's workflow relies on.
func TestSimulateEdgeProbabilities(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	res, err := SimulateTopology(topo, nil, Config{Seed: 30, Horizon: 60})
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < topo.Len(); op++ {
		want := topo.Out(core.OpID(op))
		if len(want) == 0 {
			continue
		}
		got := res.EdgeProbs[op]
		if len(got) != len(want) {
			t.Fatalf("op %d: %d measured edges, want %d", op, len(got), len(want))
		}
		for e := range want {
			if math.Abs(got[e]-want[e].Prob) > 0.03 {
				t.Errorf("op %d edge %d: measured prob %v, configured %v", op, e, got[e], want[e].Prob)
			}
		}
	}
}

// TestSimulateDeterministicRandomTopologies: with deterministic service
// times the simulator must track the fluid model tightly on random
// topologies (the stochastic error in Fig. 7/8 comes from the exponential
// service variance, not from the simulator itself).
func TestSimulateDeterministicRandomTopologies(t *testing.T) {
	bed, err := randtopo.Testbed(randtopo.Config{Seed: 77}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range bed {
		a, err := core.SteadyState(g.Topology)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		res, err := SimulateTopology(g.Topology, nil, Config{
			Seed: uint64(i), Horizon: 90, Service: Deterministic,
		})
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		// Service is deterministic but routing stays probabilistic, so
		// branchy topologies keep some sampling variance.
		if e := stats.RelErr(res.Throughput, a.Throughput()); e > 0.08 {
			t.Errorf("entry %d: deterministic sim %v vs predicted %v (err %.3f)",
				i, res.Throughput, a.Throughput(), e)
		}
	}
}

// TestSimulateWaitPercentiles: for an M/M/1-like stage the waiting-time
// distribution is exponential-tailed; the measured percentiles must obey
// the textbook relations (P95 > P50, mean between them) and roughly match
// the conditional-wait formula P95 ~ Wq * ln(20*rho)/rho scale.
func TestSimulateWaitPercentiles(t *testing.T) {
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.002})
	mid := topo.MustAddOperator(core.Operator{Name: "mid", Kind: core.KindStateless, ServiceTime: 0.0012})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0002})
	topo.MustConnect(src, mid, 1)
	topo.MustConnect(mid, sink, 1)

	res, err := SimulateTopology(topo, nil, Config{Seed: 31, Horizon: 120})
	if err != nil {
		t.Fatal(err)
	}
	var midStats *StationStats
	for i := range res.Stations {
		if res.Stations[i].Name == "mid" {
			midStats = &res.Stations[i]
		}
	}
	if midStats == nil {
		t.Fatal("mid station missing")
	}
	if midStats.WaitP95 <= midStats.WaitP50 {
		t.Errorf("P95 %v <= P50 %v", midStats.WaitP95, midStats.WaitP50)
	}
	if midStats.MeanWait <= 0 {
		t.Fatal("mean wait not measured")
	}
	// Exponential-ish tail: P95 is several times the median but bounded.
	ratio := midStats.WaitP95 / (midStats.MeanWait + 1e-12)
	if ratio < 1.2 || ratio > 10 {
		t.Errorf("P95/mean = %v, implausible for a queueing wait", ratio)
	}
}

// TestSimulateShedding: under load-shedding semantics the source never
// throttles, saturated operators discard the excess, and the measured
// drop rates match the shedding steady-state model.
func TestSimulateShedding(t *testing.T) {
	topo := pipeline(t, 0.001, 0.004, 0.0001)
	model, err := core.SteadyStateShedding(topo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateTopology(topo, nil, Config{Seed: 33, Horizon: 60, Shedding: true})
	if err != nil {
		t.Fatal(err)
	}
	// The source runs at full speed (~1000/s, no backpressure).
	if e := stats.RelErr(res.Throughput, model.SourceRate); e > 0.05 {
		t.Errorf("source rate = %v, model %v", res.Throughput, model.SourceRate)
	}
	// The bottleneck drops ~750/s.
	if e := stats.RelErr(res.Dropped[1], model.Dropped[1]); e > 0.10 {
		t.Errorf("drop rate = %v, model %v", res.Dropped[1], model.Dropped[1])
	}
	// The sink still receives the bottleneck-limited 250/s.
	if e := stats.RelErr(res.Departure[2], model.SinkRate); e > 0.10 {
		t.Errorf("sink rate = %v, model %v", res.Departure[2], model.SinkRate)
	}
	// No station ever blocks under shedding.
	for _, st := range res.Stations {
		if st.BlockedFrac > 0.001 {
			t.Errorf("station %s blocked %.3f under shedding", st.Name, st.BlockedFrac)
		}
	}
}

// TestSimulateBackpressureNeverDrops: the default semantics must not
// discard anything.
func TestSimulateBackpressureNeverDrops(t *testing.T) {
	topo := pipeline(t, 0.001, 0.004, 0.0001)
	res, err := SimulateTopology(topo, nil, Config{Seed: 34, Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	for op, d := range res.Dropped {
		if d != 0 {
			t.Errorf("op %d dropped %v under backpressure", op, d)
		}
	}
}

// TestSimulateCyclicRetryLoop: the cyclic steady-state model's traffic
// equations match the simulated feedback topology (unsaturated, so
// blocking cannot deadlock the loop).
func TestSimulateCyclicRetryLoop(t *testing.T) {
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	work := topo.MustAddOperator(core.Operator{Name: "work", Kind: core.KindStateful, ServiceTime: 0.0004})
	retry := topo.MustAddOperator(core.Operator{Name: "retry", Kind: core.KindStateful, ServiceTime: 0.0001})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, work, 1)
	topo.MustConnect(work, sink, 0.7)
	topo.MustConnect(work, retry, 0.3)
	topo.MustConnect(retry, work, 1)

	model, err := core.SteadyStateCyclic(topo)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(topo, plan.Options{AllowCycles: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(p, Config{Seed: 35, Horizon: 60})
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(res.Arrival[work], model.Lambda[work]); e > 0.05 {
		t.Errorf("work arrival = %v, model %v (err %.3f)", res.Arrival[work], model.Lambda[work], e)
	}
	if e := stats.RelErr(res.Departure[sink], model.Delta[sink]); e > 0.05 {
		t.Errorf("sink rate = %v, model %v", res.Departure[sink], model.Delta[sink])
	}
}

// TestSimulateCyclicSaturatedBlockingFailsGracefully: a saturated feedback
// loop under blocking semantics deadlocks in a real SPS (which is why
// systems avoid cyclic backpressure); the simulator must detect the stall
// and return an error instead of spinning or lying.
func TestSimulateCyclicSaturatedBlockingFailsGracefully(t *testing.T) {
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.0005})
	work := topo.MustAddOperator(core.Operator{Name: "work", Kind: core.KindStateful, ServiceTime: 0.002})
	retry := topo.MustAddOperator(core.Operator{Name: "retry", Kind: core.KindStateful, ServiceTime: 0.0001})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, work, 1)
	topo.MustConnect(work, sink, 0.2)
	topo.MustConnect(work, retry, 0.8)
	topo.MustConnect(retry, work, 1)

	p, err := plan.Build(topo, plan.Options{AllowCycles: true})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny mailboxes make the cyclic blocking deadlock certain.
	_, err = Simulate(p, Config{Seed: 36, Horizon: 40, BufferSize: 2})
	if err == nil {
		t.Fatal("saturated blocking cycle did not surface an error")
	}
	// Shedding semantics break the deadlock.
	res, err := Simulate(p, Config{Seed: 36, Horizon: 40, BufferSize: 2, Shedding: true})
	if err != nil {
		t.Fatalf("shedding on the same cycle failed: %v", err)
	}
	if res.Throughput <= 0 {
		t.Error("no throughput under shedding")
	}
}
