// Package qsim is a deterministic discrete-event simulator of SpinStreams
// execution plans as queueing networks with finite buffers and
// Blocking-After-Service (BAS) semantics — the communication model the
// paper configures Akka's BoundedMailbox to implement (Section 5.1). It is
// the repo's substitute for the paper's 24-core testbed: every station
// (actor) progresses independently at its own service rate, items queue in
// bounded mailboxes, and a send into a full mailbox blocks the sender until
// a slot frees.
//
// The simulator executes the same physical plans as the live runtime, so
// "predicted vs measured" experiments can use either substrate.
package qsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"spinstreams/internal/core"
	"spinstreams/internal/plan"
	statspkg "spinstreams/internal/stats"
)

// Distribution selects the per-item service time law.
type Distribution int

const (
	// Exponential draws service times from an exponential distribution
	// with the station's mean; the default, giving realistic variance.
	Exponential Distribution = iota + 1
	// Deterministic uses the mean verbatim; useful to isolate the fluid
	// behaviour of the network.
	Deterministic
)

// Config tunes a simulation run.
type Config struct {
	// Seed drives all sampling; same seed, same trajectory.
	Seed uint64
	// BufferSize is the mailbox capacity of every station (default 64).
	BufferSize int
	// Horizon is the simulated duration in seconds (default 40).
	Horizon float64
	// Warmup is the prefix of the horizon excluded from measurements, in
	// seconds (default Horizon/4); the paper measures steady state only.
	Warmup float64
	// Service selects the service time distribution (default Exponential).
	Service Distribution
	// Shedding switches the communication semantics from backpressure
	// (Blocking-After-Service) to load shedding: an item arriving at a
	// full mailbox is discarded instead of stalling its producer — the
	// alternative Section 2 of the paper contrasts with backpressure
	// (and the behaviour of Akka's BoundedMailbox when its enqueue
	// timeout expires).
	Shedding bool
	// RateEnvelope, when non-nil, modulates every source station's
	// generation rate over simulated time: at time t the source's mean
	// service time becomes ServiceTime / RateEnvelope(t). An envelope of
	// 1 is the steady workload; values above 1 are bursts, below 1
	// troughs. The envelope must be deterministic (same t, same value)
	// for reruns to be reproducible; non-positive values are clamped.
	RateEnvelope func(t float64) float64
	// SampleEvery, when positive and OnSample is set, emits a periodic
	// occupancy sample of every station each SampleEvery simulated
	// seconds — the simulator-side analogue of the runtime's estimator
	// sampling tick, used to validate the online service-rate estimator
	// against ground truth.
	SampleEvery float64
	// OnSample receives each periodic sample. The slice is reused between
	// calls; callers must not retain it.
	OnSample func(now float64, stations []Sample)
}

// Sample is one station's figures at a sampling instant: instantaneous
// queue/regime state plus cumulative counters, mirroring what the live
// runtime's estimator sampler reads from mailboxes and the obs registry.
type Sample struct {
	// Station indexes the plan's stations.
	Station int
	// Queued and Capacity are the station mailbox's instantaneous depth
	// and bound.
	Queued, Capacity int
	// Blocked reports the station is stalled on a full downstream mailbox.
	Blocked bool
	// Consumed, Emitted, Arrived and Dropped are cumulative counters.
	Consumed, Emitted, Arrived, Dropped uint64
}

func (c Config) withDefaults() Config {
	if c.BufferSize <= 0 {
		c.BufferSize = 64
	}
	if c.Horizon <= 0 {
		c.Horizon = 40
	}
	if c.Warmup <= 0 || c.Warmup >= c.Horizon {
		c.Warmup = c.Horizon / 4
	}
	if c.Service == 0 {
		c.Service = Exponential
	}
	return c
}

// StationStats reports one station's measured behaviour during the
// measurement window.
type StationStats struct {
	Name string
	Role plan.Role
	// Op is the logical operator the station belongs to.
	Op core.OpID
	// Consumed counts items whose service completed.
	Consumed uint64
	// Emitted counts items delivered downstream (post-blocking).
	Emitted uint64
	// BusyFrac is the fraction of the window spent serving.
	BusyFrac float64
	// BlockedFrac is the fraction of the window spent stalled by
	// backpressure (waiting on a full downstream mailbox).
	BlockedFrac float64
	// MeanQueue is the time-averaged mailbox occupancy.
	MeanQueue float64
	// MeanWait is the mean time an item spends queued in the mailbox
	// before service starts, from Little's law (MeanQueue / arrival rate).
	MeanWait float64
	// WaitP50 and WaitP95 are percentiles of the per-item mailbox waiting
	// time, from a sample of items dequeued after warmup.
	WaitP50, WaitP95 float64
}

// Result is the outcome of a simulation.
type Result struct {
	// Throughput is the measured source departure rate (items/s), the
	// paper's topology throughput.
	Throughput float64
	// Departure is the measured departure rate per logical operator.
	Departure []float64
	// Arrival is the measured arrival rate per logical operator.
	Arrival []float64
	// Stations reports per-station figures.
	Stations []StationStats
	// Wait is the mean mailbox waiting time per logical operator (the
	// entry station's queueing delay), in seconds.
	Wait []float64
	// Dropped is the rate of items discarded at each logical operator's
	// entry mailbox (items/s); all zeros under backpressure semantics.
	Dropped []float64
	// EdgeProbs reports the measured routing frequency of each logical
	// operator's output edges (same order as Topology.Out), the
	// "probability distributions that model the frequency of data
	// exchange" the paper's profiling step measures. Entries are nil for
	// operators that emitted nothing.
	EdgeProbs [][]float64
	// Events counts processed simulation events.
	Events uint64
	// MeasuredSeconds is the length of the measurement window.
	MeasuredSeconds float64
}

const (
	stIdle = iota
	stServing
	stBlocked
)

type simStation struct {
	spec *plan.Station
	// queued is the number of items waiting in the mailbox.
	queued int
	// arrivalTimes rings the enqueue timestamps of the queued items so
	// per-item waiting times can be sampled at dequeue (head/tail indices
	// wrap modulo the mailbox capacity).
	arrivalTimes []float64
	qHead, qTail int
	// dropped counts items discarded at this station's mailbox under
	// shedding semantics (cumulative).
	dropped     uint64
	snapDropped uint64
	// waitSamples collects post-warmup waiting times (decimated once the
	// budget fills).
	waitSamples []float64
	sampleEvery uint64
	sampleTick  uint64
	state       int
	// credit accumulates fractional output entitlement (gain per consumed
	// item); floor(credit) items are emitted at each completion.
	credit float64
	// rr is the round-robin cursor for emitter stations.
	rr int
	// pending are the remaining output targets of the completed service
	// that still must be delivered (head blocks on a full mailbox).
	pending []plan.StationID
	// waiters are producer stations blocked on this station's mailbox, in
	// arrival order.
	waiters []plan.StationID
	// edgeIdx maps a target station to its index in spec.Out, for the
	// per-edge delivery counters.
	edgeIdx map[plan.StationID]int
	// edgeCount counts items delivered per output edge (cumulative).
	edgeCount []uint64
	// lastEdge is the edge index of the head pending output, so blocked
	// deliveries are attributed to the right edge on admission.
	lastEdge []int

	// Statistics (cumulative; the measurement window subtracts snapshots).
	consumed, emitted   uint64
	arrived             uint64
	busy, blocked       float64
	lastTransition      float64
	qArea               float64
	lastQChange         float64
	snapConsumed        uint64
	snapEmitted         uint64
	snapArrived         uint64
	snapBusy, snapBlock float64
	snapQArea           float64
}

type event struct {
	at  float64
	seq uint64
	st  plan.StationID
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type sim struct {
	cfg      Config
	stations []simStation
	events   eventHeap
	rng      *statspkg.RNG
	now      float64
	seq      uint64
	nEvents  uint64
}

// Simulate runs the plan under the configuration and reports steady-state
// measurements.
func Simulate(p *plan.Plan, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if p == nil || len(p.Stations) == 0 {
		return nil, errors.New("qsim: empty plan")
	}
	s := &sim{
		cfg:      cfg,
		stations: make([]simStation, len(p.Stations)),
		rng:      statspkg.NewRNG(cfg.Seed),
	}
	for i := range p.Stations {
		st := simStation{
			spec:         &p.Stations[i],
			arrivalTimes: make([]float64, cfg.BufferSize),
			sampleEvery:  1,
		}
		if n := len(p.Stations[i].Out); n > 0 {
			st.edgeIdx = make(map[plan.StationID]int, n)
			for e, edge := range p.Stations[i].Out {
				st.edgeIdx[edge.To] = e
			}
			st.edgeCount = make([]uint64, n)
		}
		s.stations[i] = st
	}
	heap.Init(&s.events)

	// The source always has input: start it immediately.
	s.startService(p.SourceID)

	// Periodic occupancy sampling: simulator state is piecewise-constant
	// between events, so draining every sample instant up to (and
	// including) the next event time before processing it reads exact
	// queue depths, regimes and counters at each instant.
	var sampleBuf []Sample
	nextSample := cfg.SampleEvery
	emitSamples := func(upTo float64) {
		if cfg.SampleEvery <= 0 || cfg.OnSample == nil {
			return
		}
		if upTo > cfg.Horizon {
			upTo = cfg.Horizon
		}
		for nextSample <= upTo {
			if sampleBuf == nil {
				sampleBuf = make([]Sample, len(s.stations))
			}
			for i := range s.stations {
				st := &s.stations[i]
				sampleBuf[i] = Sample{
					Station:  i,
					Queued:   st.queued,
					Capacity: cfg.BufferSize,
					Blocked:  st.state == stBlocked,
					Consumed: st.consumed,
					Emitted:  st.emitted,
					Arrived:  st.arrived,
					Dropped:  st.dropped,
				}
			}
			cfg.OnSample(nextSample, sampleBuf)
			nextSample += cfg.SampleEvery
		}
	}

	snapped := false
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		if e.at > cfg.Horizon {
			break
		}
		emitSamples(e.at)
		s.now = e.at
		if !snapped && s.now >= cfg.Warmup {
			s.snapshot()
			snapped = true
		}
		s.nEvents++
		s.complete(e.st)
	}
	// The last events may leave stations parked well before the horizon;
	// their state persists, so trailing samples are still exact.
	emitSamples(cfg.Horizon)
	if !snapped {
		return nil, fmt.Errorf("qsim: simulation ended before warmup (%v s)", cfg.Warmup)
	}
	return s.result(p)
}

// SimulateTopology expands the topology (with optional replication degrees)
// and simulates it; the common entry point for experiments.
func SimulateTopology(t *core.Topology, replicas []int, cfg Config) (*Result, error) {
	p, err := plan.Build(t, plan.Options{Replicas: replicas})
	if err != nil {
		return nil, err
	}
	return Simulate(p, cfg)
}

// snapshot records the warmup boundary for every station.
func (s *sim) snapshot() {
	for i := range s.stations {
		st := &s.stations[i]
		s.settle(st)
		st.snapConsumed = st.consumed
		st.snapEmitted = st.emitted
		st.snapArrived = st.arrived
		st.snapBusy = st.busy
		st.snapBlock = st.blocked
		st.snapDropped = st.dropped
		s.settleQueue(st)
		st.snapQArea = st.qArea
	}
}

// enqueueAt records one arrival into the mailbox ring.
func (st *simStation) enqueueAt(now float64) {
	st.arrivalTimes[st.qTail] = now
	st.qTail = (st.qTail + 1) % len(st.arrivalTimes)
	st.queued++
}

// sampleWait pops the oldest arrival and, past warmup, records its waiting
// time; the sample set decimates itself to stay bounded.
func (st *simStation) sampleWait(now, warmup float64) {
	arrived := st.arrivalTimes[st.qHead]
	st.qHead = (st.qHead + 1) % len(st.arrivalTimes)
	st.queued--
	if now < warmup {
		return
	}
	st.sampleTick++
	if st.sampleTick%st.sampleEvery != 0 {
		return
	}
	const maxSamples = 4096
	if len(st.waitSamples) >= maxSamples {
		// Halve the set and double the stride: an unbiased-enough
		// decimation that keeps memory constant on long horizons.
		half := st.waitSamples[:0]
		for i := 1; i < maxSamples; i += 2 {
			half = append(half, st.waitSamples[i])
		}
		st.waitSamples = half
		st.sampleEvery *= 2
	}
	st.waitSamples = append(st.waitSamples, now-arrived)
}

// settleQueue accrues the queue-length time integral up to now.
func (s *sim) settleQueue(st *simStation) {
	dt := s.now - st.lastQChange
	if dt > 0 {
		st.qArea += float64(st.queued) * dt
	}
	st.lastQChange = s.now
}

// settle accrues the in-progress serving/blocked interval up to now.
func (s *sim) settle(st *simStation) {
	dt := s.now - st.lastTransition
	if dt < 0 {
		dt = 0
	}
	switch st.state {
	case stServing:
		st.busy += dt
	case stBlocked:
		st.blocked += dt
	}
	st.lastTransition = s.now
}

func (s *sim) serviceTime(st *simStation) float64 {
	mean := st.spec.ServiceTime
	if mean <= 0 {
		mean = 1e-9
	}
	if s.cfg.RateEnvelope != nil && st.spec.Role == plan.RoleSource {
		e := s.cfg.RateEnvelope(s.now)
		if e < 1e-9 {
			e = 1e-9
		}
		mean /= e
	}
	if s.cfg.Service == Deterministic {
		return mean
	}
	return s.rng.Exp(mean)
}

// startService transitions an idle station into serving when it has work.
func (s *sim) startService(id plan.StationID) {
	st := &s.stations[id]
	if st.state != stIdle {
		return
	}
	if st.spec.Role != plan.RoleSource {
		if st.queued == 0 {
			return
		}
		s.settleQueue(st)
		st.sampleWait(s.now, s.cfg.Warmup)
		// A mailbox slot freed: a blocked upstream producer may deliver.
		s.admitWaiter(id)
	}
	s.settle(st)
	st.state = stServing
	s.seq++
	heap.Push(&s.events, event{at: s.now + s.serviceTime(st), seq: s.seq, st: id})
}

// complete handles a service completion.
func (s *sim) complete(id plan.StationID) {
	st := &s.stations[id]
	s.settle(st)
	st.state = stIdle
	st.consumed++
	st.credit += st.spec.Gain
	k := int(math.Floor(st.credit))
	st.credit -= float64(k)
	if len(st.spec.Out) == 0 {
		// Sink: results leave the system immediately.
		st.emitted += uint64(k)
		s.startService(id)
		return
	}
	for i := 0; i < k; i++ {
		tgt := s.route(st)
		st.pending = append(st.pending, tgt)
		st.lastEdge = append(st.lastEdge, st.edgeIdx[tgt])
	}
	s.deliver(id)
}

// route samples one output target per the station's discipline.
func (s *sim) route(st *simStation) plan.StationID {
	out := st.spec.Out
	if len(out) == 1 {
		return out[0].To
	}
	if st.spec.Discipline == plan.RoundRobin {
		t := out[st.rr%len(out)].To
		st.rr++
		return t
	}
	// Probabilistic and KeyHash: weighted sampling (KeyHash edges carry
	// the replica load shares, so anonymous items reproduce the key skew).
	u := s.rng.Float64()
	acc := 0.0
	for _, e := range out {
		acc += e.Prob
		if u < acc {
			return e.To
		}
	}
	return out[len(out)-1].To
}

// deliver pushes the station's pending outputs downstream, blocking on the
// first full mailbox (BAS).
func (s *sim) deliver(id plan.StationID) {
	st := &s.stations[id]
	for len(st.pending) > 0 {
		tgtID := st.pending[0]
		tgt := &s.stations[tgtID]
		if tgt.queued >= s.cfg.BufferSize {
			if s.cfg.Shedding {
				// Load shedding: discard the item instead of stalling.
				st.edgeCount[st.lastEdge[0]]++
				st.pending = st.pending[1:]
				st.lastEdge = st.lastEdge[1:]
				st.emitted++
				tgt.dropped++
				continue
			}
			s.settle(st)
			st.state = stBlocked
			tgt.waiters = append(tgt.waiters, id)
			return
		}
		st.edgeCount[st.lastEdge[0]]++
		st.pending = st.pending[1:]
		st.lastEdge = st.lastEdge[1:]
		st.emitted++
		s.settleQueue(tgt)
		tgt.enqueueAt(s.now)
		tgt.arrived++
		if tgt.state == stIdle {
			s.startService(tgtID)
		}
	}
	s.settle(st)
	st.state = stIdle
	s.startService(id)
}

// admitWaiter lets the oldest blocked producer deliver into the freed slot.
func (s *sim) admitWaiter(id plan.StationID) {
	st := &s.stations[id]
	if len(st.waiters) == 0 || st.queued >= s.cfg.BufferSize {
		return
	}
	w := st.waiters[0]
	st.waiters = st.waiters[1:]
	prod := &s.stations[w]
	// The waiter's head pending output targets this station.
	prod.edgeCount[prod.lastEdge[0]]++
	prod.pending = prod.pending[1:]
	prod.lastEdge = prod.lastEdge[1:]
	prod.emitted++
	s.settleQueue(st)
	st.enqueueAt(s.now)
	st.arrived++
	s.settle(prod)
	prod.state = stIdle
	// Continue the producer's remaining deliveries (it may block again).
	s.deliver(w)
}

// result aggregates measurements over the window per logical operator.
func (s *sim) result(p *plan.Plan) (*Result, error) {
	window := s.cfg.Horizon - s.cfg.Warmup
	if window <= 0 {
		return nil, errors.New("qsim: empty measurement window")
	}
	// Settle final intervals at the horizon.
	s.now = s.cfg.Horizon
	for i := range s.stations {
		s.settle(&s.stations[i])
	}
	res := &Result{
		Departure:       make([]float64, len(p.WorkersOf)),
		Arrival:         make([]float64, len(p.WorkersOf)),
		Wait:            make([]float64, len(p.WorkersOf)),
		Dropped:         make([]float64, len(p.WorkersOf)),
		EdgeProbs:       make([][]float64, len(p.WorkersOf)),
		Stations:        make([]StationStats, len(s.stations)),
		Events:          s.nEvents,
		MeasuredSeconds: window,
	}
	for i := range s.stations {
		st := &s.stations[i]
		s.settleQueue(st)
		stats := StationStats{
			Name:        st.spec.Name,
			Role:        st.spec.Role,
			Op:          st.spec.Op,
			Consumed:    st.consumed - st.snapConsumed,
			Emitted:     st.emitted - st.snapEmitted,
			BusyFrac:    (st.busy - st.snapBusy) / window,
			BlockedFrac: (st.blocked - st.snapBlock) / window,
			MeanQueue:   (st.qArea - st.snapQArea) / window,
		}
		if arrived := st.arrived - st.snapArrived; arrived > 0 {
			stats.MeanWait = stats.MeanQueue * window / float64(arrived)
		}
		if len(st.waitSamples) > 0 {
			sum := statspkg.Summarize(st.waitSamples)
			stats.WaitP50 = sum.P50
			stats.WaitP95 = sum.P95
		}
		res.Stations[i] = stats
	}
	// Logical rates: the operator's departure side is its collector when
	// replicated, else its single worker; the arrival side is its entry.
	for op := range p.WorkersOf {
		outSide := p.WorkersOf[op]
		if c := p.CollectorOf[op]; c >= 0 {
			outSide = []plan.StationID{c}
		}
		var emitted uint64
		for _, sid := range outSide {
			emitted += s.stations[sid].emitted - s.stations[sid].snapEmitted
		}
		res.Departure[op] = float64(emitted) / window
		if len(outSide) == 1 {
			// The logical output edges live on the single worker, source
			// or collector station, in topology order.
			st := &s.stations[outSide[0]]
			var total uint64
			for _, c := range st.edgeCount {
				total += c
			}
			if total > 0 {
				probs := make([]float64, len(st.edgeCount))
				for e, c := range st.edgeCount {
					probs[e] = float64(c) / float64(total)
				}
				res.EdgeProbs[op] = probs
			}
		}
		entry := p.EntryOf[op]
		if entry >= 0 {
			res.Arrival[op] = float64(s.stations[entry].arrived-s.stations[entry].snapArrived) / window
			res.Wait[op] = res.Stations[entry].MeanWait
			res.Dropped[op] = float64(s.stations[entry].dropped-s.stations[entry].snapDropped) / window
		}
	}
	res.Throughput = res.Departure[p.Stations[p.SourceID].Op]
	return res, nil
}
