package spinstreams_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes each bundled example end to end; every program
// must exit cleanly and print the markers its walkthrough promises. The
// examples double as the library's integration suite: analysis, fission,
// fusion (Algorithm 4 live), keyed fission under skew, and distributed
// execution all run for real.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples execute live topologies for seconds each")
	}
	cases := []struct {
		path    string
		markers []string
	}{
		{"./examples/quickstart", []string{"after fission", "executed live"}},
		{"./examples/fusionpaper", []string{"Table 1", "Table 2", "alert=true"}},
		{"./examples/fraud", []string{"optimized (budget 12 replicas)", "live run"}},
		{"./examples/sensors", []string{"best fusion candidate", "live fused topology"}},
		{"./examples/distributed", []string{"single process", "3 nodes over TCP"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.path, "./examples/"), func(t *testing.T) {
			out, err := exec.Command("go", "run", tc.path).CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, marker := range tc.markers {
				if !strings.Contains(string(out), marker) {
					t.Errorf("output missing %q:\n%s", marker, out)
				}
			}
		})
	}
}
