// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (Section 5) plus the ablations called out in DESIGN.md and
// micro-benchmarks of the core algorithms. Custom metrics report the
// experiment's headline quantity (prediction error, throughput ratio) next
// to the usual ns/op.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package spinstreams_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/experiments"
	"spinstreams/internal/keypart"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/obs"
	"spinstreams/internal/operators"
	"spinstreams/internal/opt"
	"spinstreams/internal/qsim"
	"spinstreams/internal/randtopo"
	"spinstreams/internal/runtime"
	"spinstreams/internal/stats"
	"spinstreams/internal/window"
)

// benchSetup is a reduced testbed so each benchmark iteration stays fast;
// cmd/ssbench runs the full 50-topology configuration.
func benchSetup() experiments.Setup {
	return experiments.Setup{
		Seed:       42,
		Topologies: 6,
		Sim:        qsim.Config{Horizon: 10},
	}
}

// BenchmarkFig7Accuracy regenerates Figure 7: predicted vs measured
// topology throughput; reports the mean relative error.
func BenchmarkFig7Accuracy(b *testing.B) {
	var meanErr float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchSetup())
		if err != nil {
			b.Fatal(err)
		}
		meanErr = res.ErrStat.Mean
	}
	b.ReportMetric(meanErr*100, "mean-err-%")
}

// BenchmarkFig8PerOperator regenerates Figure 8: per-operator
// departure-rate errors.
func BenchmarkFig8PerOperator(b *testing.B) {
	var meanErr float64
	var ops int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchSetup())
		if err != nil {
			b.Fatal(err)
		}
		meanErr = res.ErrStat.Mean
		ops = res.Operators
	}
	b.ReportMetric(meanErr*100, "mean-err-%")
	b.ReportMetric(float64(ops), "operators")
}

// BenchmarkFig9Fission regenerates Figure 9: bottleneck elimination across
// the testbed; reports the fraction of topologies reaching ideal
// throughput.
func BenchmarkFig9Fission(b *testing.B) {
	var ideal, total int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchSetup())
		if err != nil {
			b.Fatal(err)
		}
		ideal, total = res.Ideal, len(res.Rows)
	}
	b.ReportMetric(float64(ideal)/float64(total)*100, "ideal-%")
}

// BenchmarkFig10Bounds regenerates Figure 10: replica budgets.
func BenchmarkFig10Bounds(b *testing.B) {
	s := benchSetup()
	s.Topologies = 25
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Fusion regenerates Table 1 (feasible fusion); reports the
// predicted fused service time in ms (paper: 2.80).
func BenchmarkTable1Fusion(b *testing.B) {
	var fusedMs float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table(benchSetup(), core.PaperExampleTable1)
		if err != nil {
			b.Fatal(err)
		}
		fusedMs = res.FusedServiceMs
	}
	b.ReportMetric(fusedMs, "fused-T-ms")
}

// BenchmarkTable2Fusion regenerates Table 2 (fusion introduces a
// bottleneck); reports the measured degradation in percent (paper: ~20%).
func BenchmarkTable2Fusion(b *testing.B) {
	var deg float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table(benchSetup(), core.PaperExampleTable2)
		if err != nil {
			b.Fatal(err)
		}
		deg = 1 - res.MeasuredAfter/res.MeasuredBefore
	}
	b.ReportMetric(deg*100, "degradation-%")
}

// BenchmarkAblationRestartVsScale compares the paper's restart-based
// Algorithm 1 against the single-pass scaling variant on the same graphs.
func BenchmarkAblationRestartVsScale(b *testing.B) {
	bed, err := randtopo.Testbed(randtopo.Config{Seed: 7}, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("restart", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, g := range bed {
				if _, err := core.SteadyState(g.Topology); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("single-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, g := range bed {
				if _, err := core.SteadyStateFast(g.Topology); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationFusionRateDP compares the paper-literal exponential
// path enumeration against the linear DP for the fused service rate.
func BenchmarkAblationFusionRateDP(b *testing.B) {
	topo, sub := core.PaperExampleTopology(core.PaperExampleTable1)
	front, err := core.ValidateSubgraph(topo, sub)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("paths", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.FusionServiceTimeByPaths(topo, sub, front)
		}
	})
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.FusionServiceTime(topo, sub, front); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationKeyPartitioning compares greedy packing vs consistent
// hashing on a skewed key distribution; reports each pmax.
func BenchmarkAblationKeyPartitioning(b *testing.B) {
	freq := stats.ZipfWeights(1000, 1.5)
	b.Run("greedy", func(b *testing.B) {
		var pmax float64
		for i := 0; i < b.N; i++ {
			asg, err := keypart.Greedy{}.Partition(freq, 16)
			if err != nil {
				b.Fatal(err)
			}
			pmax = asg.PMax
		}
		b.ReportMetric(pmax, "pmax")
	})
	b.Run("hash", func(b *testing.B) {
		var pmax float64
		for i := 0; i < b.N; i++ {
			asg, err := keypart.ConsistentHash{Seed: 3}.Partition(freq, 16)
			if err != nil {
				b.Fatal(err)
			}
			pmax = asg.PMax
		}
		b.ReportMetric(pmax, "pmax")
	})
}

// BenchmarkAblationBufferSize sweeps the mailbox capacity in the simulator
// (the model is capacity-independent; throughput should be stable).
func BenchmarkAblationBufferSize(b *testing.B) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable2)
	for _, capacity := range []int{2, 16, 128} {
		b.Run(fmt.Sprintf("cap%d", capacity), func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				res, err := qsim.SimulateTopology(topo, nil, qsim.Config{
					Seed: uint64(i), Horizon: 10, BufferSize: capacity,
				})
				if err != nil {
					b.Fatal(err)
				}
				tp = res.Throughput
			}
			b.ReportMetric(tp, "tuples/s")
		})
	}
}

// BenchmarkRuntimeRawThroughput measures the dataplane itself: a linear
// 4-operator pipeline with service padding disabled, so tuples/sec is
// bounded by per-item synchronization overhead rather than operator
// service time. The per-tuple, batched, and spsc mailbox transports run
// the same plan (the spsc series uses the Auto policy — every edge of the
// linear pipeline is analyzer-proven single-producer, so all inboxes bind
// to the lock-free ring); the reported tuples/s are the source departure
// rate. The *-obs
// variants bind a metrics registry (the counters always run — the
// variants add the sampled histogram probes), pinning the documented
// <5% observability overhead. The *-est variants additionally run the
// probe-free occupancy sampler (1 ms tick); est_overhead compares them
// against the *-obs baseline to isolate the sampler's cost, pinning the
// "cheaper than probes" claim. Set SS_BENCH_JSON=<path> to also record
// the comparison as a JSON bench trajectory point (CI uploads it as
// BENCH_runtime.json and gates regressions with cmd/benchgate).
func BenchmarkRuntimeRawThroughput(b *testing.B) {
	topo := core.NewTopology()
	var prev core.OpID
	for i, spec := range []struct {
		name string
		kind core.Kind
	}{
		{"src", core.KindSource},
		{"stage1", core.KindStateless},
		{"stage2", core.KindStateless},
		{"sink", core.KindSink},
	} {
		id := topo.MustAddOperator(core.Operator{Name: spec.name, Kind: spec.kind, ServiceTime: 0.001})
		if i > 0 {
			topo.MustConnect(prev, id, 1)
		}
		prev = id
	}
	run := func(b *testing.B, mode mailbox.Mode, withObs, withEst bool) float64 {
		var tps float64
		for i := 0; i < b.N; i++ {
			// A lean generator (one payload field, tiny key domain) keeps
			// source-side tuple construction from masking the dataplane
			// cost under measurement.
			gen, err := operators.NewGenerator(operators.GeneratorConfig{
				Seed: uint64(i + 1), NumKeys: 4, NumFields: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			cfg := runtime.Config{
				Seed:             uint64(i + 1),
				Duration:         800 * time.Millisecond,
				Warmup:           200 * time.Millisecond,
				MailboxSize:      512,
				NoServicePadding: true,
				Mailbox:          mode,
				Batch:            128,
				Generator:        gen,
			}
			if withObs {
				cfg.Obs = obs.New()
			}
			if withEst {
				cfg.Estimator = true
			}
			m, err := runtime.RunTopology(context.Background(), topo, nil, nil, cfg)
			if err != nil {
				b.Fatal(err)
			}
			tps = m.Throughput
		}
		b.ReportMetric(tps, "tuples/s")
		return tps
	}
	results := map[string]float64{}
	b.Run("per-tuple", func(b *testing.B) { results["per-tuple"] = run(b, mailbox.PerTuple, false, false) })
	b.Run("batched", func(b *testing.B) { results["batched"] = run(b, mailbox.Batched, false, false) })
	// The linear pipeline is all single-producer edges, so the Auto policy
	// binds every inbox to the lock-free SPSC ring: this series is the
	// ring transport's headline number.
	b.Run("spsc", func(b *testing.B) { results["spsc"] = run(b, mailbox.Auto, false, false) })
	b.Run("per-tuple-obs", func(b *testing.B) { results["per-tuple-obs"] = run(b, mailbox.PerTuple, true, false) })
	b.Run("batched-obs", func(b *testing.B) { results["batched-obs"] = run(b, mailbox.Batched, true, false) })
	b.Run("spsc-obs", func(b *testing.B) { results["spsc-obs"] = run(b, mailbox.Auto, true, false) })
	b.Run("per-tuple-est", func(b *testing.B) { results["per-tuple-est"] = run(b, mailbox.PerTuple, true, true) })
	b.Run("batched-est", func(b *testing.B) { results["batched-est"] = run(b, mailbox.Batched, true, true) })
	if path := os.Getenv("SS_BENCH_JSON"); path != "" && results["per-tuple"] > 0 {
		point := struct {
			Benchmark string             `json:"benchmark"`
			Pipeline  int                `json:"pipeline_operators"`
			Padding   bool               `json:"service_padding"`
			TuplesPer map[string]float64 `json:"tuples_per_sec"`
			Speedup   float64            `json:"batched_speedup"`
			SPSCSpeed float64            `json:"spsc_speedup"`
			ObsOver   map[string]float64 `json:"obs_overhead"`
			EstOver   map[string]float64 `json:"est_overhead"`
		}{
			Benchmark: "BenchmarkRuntimeRawThroughput",
			Pipeline:  topo.Len(),
			Padding:   false,
			TuplesPer: results,
			Speedup:   results["batched"] / results["per-tuple"],
			SPSCSpeed: results["spsc"] / results["batched"],
			ObsOver: map[string]float64{
				"per-tuple": 1 - results["per-tuple-obs"]/results["per-tuple"],
				"batched":   1 - results["batched-obs"]/results["batched"],
				"spsc":      1 - results["spsc-obs"]/results["spsc"],
			},
			EstOver: map[string]float64{
				"per-tuple": 1 - results["per-tuple-est"]/results["per-tuple-obs"],
				"batched":   1 - results["batched-est"]/results["batched-obs"],
			},
		}
		data, err := json.MarshalIndent(point, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconfigStall measures the cost of live reconfiguration: each
// iteration starts a controller on an unpadded 4-operator pipeline,
// applies a grow/grow/shrink rescale sequence while tuples flow, and
// collects every pause-fence stall. The reported metric is the p99 fence
// stall in milliseconds — the time reconfigured stations (and only they)
// were paused; unaffected stations keep running throughout. Set
// SS_BENCH_JSON=<path> to merge the p99 into the bench trajectory record
// (CI gates it against the committed BENCH_runtime.json baseline with
// cmd/benchgate).
func BenchmarkReconfigStall(b *testing.B) {
	topo := core.NewTopology()
	var prev core.OpID
	for i, spec := range []struct {
		name string
		kind core.Kind
	}{
		{"src", core.KindSource},
		{"stage1", core.KindStateless},
		{"stage2", core.KindStateless},
		{"sink", core.KindSink},
	} {
		id := topo.MustAddOperator(core.Operator{Name: spec.name, Kind: spec.kind, ServiceTime: 0.001})
		if i > 0 {
			topo.MustConnect(prev, id, 1)
		}
		prev = id
	}
	var stalls []time.Duration
	for i := 0; i < b.N; i++ {
		c, err := runtime.StartTopology(topo, nil, nil, runtime.Config{
			Seed:                uint64(i + 1),
			MailboxSize:         64,
			NoServicePadding:    true,
			ReconfigStallBudget: 10 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, step := range []opt.ReplicaChange{
			{Operator: "stage1", From: 1, To: 2},
			{Operator: "stage2", From: 1, To: 3},
			{Operator: "stage2", From: 3, To: 2},
		} {
			time.Sleep(20 * time.Millisecond)
			if _, err := c.ApplyDelta(&opt.DeltaPlan{Changes: []opt.ReplicaChange{step}}); err != nil {
				b.Fatal(err)
			}
		}
		stalls = append(stalls, c.Stalls()...)
		if _, err := c.Stop(); err != nil {
			b.Fatal(err)
		}
	}
	if len(stalls) == 0 {
		b.Fatal("no stalls recorded")
	}
	sort.Slice(stalls, func(i, j int) bool { return stalls[i] < stalls[j] })
	idx := (99*len(stalls) + 99) / 100
	if idx > len(stalls) {
		idx = len(stalls)
	}
	p99 := float64(stalls[idx-1]) / float64(time.Millisecond)
	b.ReportMetric(p99, "stall-p99-ms")
	if path := os.Getenv("SS_BENCH_JSON"); path != "" {
		// Merge into the record BenchmarkRuntimeRawThroughput wrote (the
		// benchmarks run in declaration order, so that file exists by now
		// when both are selected), preserving its series.
		doc := map[string]any{}
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &doc); err != nil {
				b.Fatal(err)
			}
		}
		doc["reconfig_stall_p99_ms"] = p99
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyState measures Algorithm 1 on growing random graphs.
func BenchmarkSteadyState(b *testing.B) {
	for _, v := range []int{10, 20} {
		g, err := randtopo.GenerateSized(randtopo.Config{Seed: 9}, v, v+v/5)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("v%d", v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SteadyState(g.Topology); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEliminateBottlenecks measures Algorithm 2.
func BenchmarkEliminateBottlenecks(b *testing.B) {
	g, err := randtopo.GenerateSized(randtopo.Config{Seed: 11}, 20, 24)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.EliminateBottlenecks(g.Topology, core.FissionOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFusionCandidates measures the automatic candidate search.
func BenchmarkFusionCandidates(b *testing.B) {
	g, err := randtopo.GenerateSized(randtopo.Config{Seed: 13}, 20, 24)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.FusionCandidates(g.Topology, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorEvents measures raw simulator speed in events/s.
func BenchmarkSimulatorEvents(b *testing.B) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	var events uint64
	var seconds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := qsim.SimulateTopology(topo, nil, qsim.Config{Seed: uint64(i), Horizon: 10})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	seconds = b.Elapsed().Seconds()
	if seconds > 0 {
		b.ReportMetric(float64(events)/seconds, "events/s")
	}
}

// BenchmarkOperators measures the per-item cost of representative catalog
// operators (the profiling the paper's workflow depends on).
func BenchmarkOperators(b *testing.B) {
	specs := []operators.Spec{
		{Impl: "identity"},
		{Impl: "scale", Param: 2},
		{Impl: "magnitude"},
		{Impl: "threshold-filter", Param: 0.5},
		{Impl: "wma", WindowLen: 1000, Slide: 10},
		{Impl: "wquantile", WindowLen: 1000, Slide: 10, Param: 0.95},
		{Impl: "skyline", WindowLen: 200, Slide: 10, K: 2},
		{Impl: "topk", WindowLen: 1000, Slide: 10, K: 10},
		{Impl: "bandjoin", WindowLen: 500, Param: 0.01},
	}
	for _, spec := range specs {
		b.Run(spec.Impl, func(b *testing.B) {
			op := operators.MustBuild(spec)
			gen, err := operators.NewGenerator(operators.GeneratorConfig{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			emit := func(operators.Tuple) {}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op.Process(gen.Next(), emit)
			}
		})
	}
}

// BenchmarkWindow measures the sliding-window substrate.
func BenchmarkWindow(b *testing.B) {
	w := window.MustCount[float64](1000, 10)
	var snap []float64
	for i := 0; i < b.N; i++ {
		if w.Add(float64(i)) {
			snap = w.Snapshot(snap[:0])
		}
	}
	_ = snap
}

// BenchmarkXMLRoundTrip measures the topology formalism.
func BenchmarkXMLRoundTrip(b *testing.B) {
	g, err := randtopo.GenerateSized(randtopo.Config{Seed: 15}, 20, 24)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		roundTripXML(b, g)
	}
}

// BenchmarkSteadyStateCyclic measures the traffic-equation fixed point on
// a feedback topology.
func BenchmarkSteadyStateCyclic(b *testing.B) {
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	work := topo.MustAddOperator(core.Operator{Name: "work", Kind: core.KindStateful, ServiceTime: 0.0005})
	retry := topo.MustAddOperator(core.Operator{Name: "retry", Kind: core.KindStateful, ServiceTime: 0.0001})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, work, 1)
	topo.MustConnect(work, sink, 0.7)
	topo.MustConnect(work, retry, 0.3)
	topo.MustConnect(retry, work, 1)
	for i := 0; i < b.N; i++ {
		if _, err := core.SteadyStateCyclic(topo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSheddingModel measures the load-shedding steady state.
func BenchmarkSheddingModel(b *testing.B) {
	g, err := randtopo.GenerateSized(randtopo.Config{Seed: 21}, 20, 24)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.SteadyStateShedding(g.Topology); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateLatency measures the latency extension.
func BenchmarkEstimateLatency(b *testing.B) {
	g, err := randtopo.GenerateSized(randtopo.Config{Seed: 23}, 20, 24)
	if err != nil {
		b.Fatal(err)
	}
	a, err := core.SteadyState(g.Topology)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateLatency(g.Topology, a, core.MM1, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutoFuse measures the automatic fusion loop.
func BenchmarkAutoFuse(b *testing.B) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	for i := 0; i < b.N; i++ {
		if _, err := core.AutoFuse(topo, core.AutoFuseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
