// Fraud scoring: a real-time analytics pipeline over a stream of card
// transactions — the kind of workload the paper's introduction motivates.
//
// Topology:
//
//	transactions -> dedup -> score -> split -> high-risk filter -> top-k alerts
//	                                 \-> per-card rolling average (keyed, skewed)
//
// The per-card aggregation is partitioned-stateful with a ZipF key
// distribution (a few hot cards dominate), so the optimizer must use key
// partitioning — and key skew limits how far fission can go.
//
//	go run ./examples/fraud
package main

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"spinstreams"
	"spinstreams/internal/core"
	"spinstreams/internal/operators"
	"spinstreams/internal/stats"
)

const ms = 1e-3

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fraud:", err)
		os.Exit(1)
	}
}

func run() error {
	const numCards = 200
	cardFreq := stats.ZipfWeights(numCards, 1.4)

	t := spinstreams.NewTopology()
	src := t.MustAddOperator(spinstreams.Operator{
		Name: "transactions", Kind: spinstreams.KindSource, ServiceTime: 0.8 * ms, Impl: "source",
	})
	dedup := t.MustAddOperator(spinstreams.Operator{
		Name: "dedup", Kind: spinstreams.KindPartitionedStateful, ServiceTime: 0.4 * ms,
		OutputSelectivity: 0.9, Impl: "dedup",
		Keys: &spinstreams.KeyDistribution{Freq: cardFreq},
	})
	score := t.MustAddOperator(spinstreams.Operator{
		Name: "score", Kind: spinstreams.KindStateless, ServiceTime: 2.5 * ms, Impl: "magnitude",
	})
	riskFilter := t.MustAddOperator(spinstreams.Operator{
		Name: "high-risk", Kind: spinstreams.KindStateless, ServiceTime: 0.3 * ms,
		OutputSelectivity: 0.5, Impl: "threshold-filter",
	})
	rolling := t.MustAddOperator(spinstreams.Operator{
		Name: "per-card-average", Kind: spinstreams.KindPartitionedStateful, ServiceTime: 2.2 * ms,
		InputSelectivity: 10, Impl: "wma",
		Keys: &spinstreams.KeyDistribution{Freq: cardFreq},
	})
	alerts := t.MustAddOperator(spinstreams.Operator{
		Name: "alerts-topk", Kind: spinstreams.KindStateful, ServiceTime: 1.0 * ms,
		InputSelectivity: 5, Impl: "topk",
	})
	dash := t.MustAddOperator(spinstreams.Operator{
		Name: "dashboard", Kind: spinstreams.KindSink, ServiceTime: 0.1 * ms, Impl: "projection",
	})
	t.MustConnect(src, dedup, 1)
	t.MustConnect(dedup, score, 1)
	t.MustConnect(score, riskFilter, 0.55)
	t.MustConnect(score, rolling, 0.45)
	t.MustConnect(riskFilter, alerts, 1)
	t.MustConnect(alerts, dash, 1)
	t.MustConnect(rolling, dash, 1)

	// Predict the initial design.
	a, err := spinstreams.Analyze(t)
	if err != nil {
		return err
	}
	fmt.Printf("initial design: %.0f tx/s predicted", a.Throughput())
	if a.Bottlenecked() {
		fmt.Printf(" (bottlenecks:")
		for _, id := range a.Limiting {
			fmt.Printf(" %s", t.Op(id).Name)
		}
		fmt.Printf(")")
	}
	fmt.Println()

	// Optimize with a replica budget, as an operations team would.
	opt, err := spinstreams.Optimize(t, spinstreams.FissionOptions{MaxReplicas: 12})
	if err != nil {
		return err
	}
	fmt.Printf("optimized (budget 12 replicas): %.0f tx/s predicted\n", opt.Analysis.Throughput())
	for i := 0; i < t.Len(); i++ {
		if n := opt.Analysis.Replicas[i]; n > 1 {
			fmt.Printf("  %s -> %d replicas", t.Op(core.OpID(i)).Name, n)
			if pm := opt.Analysis.PMax[i]; pm > 0 {
				fmt.Printf(" (hottest replica owns %.0f%% of the cards' traffic)", pm*100)
			}
			fmt.Println()
		}
	}
	for _, u := range opt.Unresolved {
		fmt.Printf("  unresolved: %s (%s)\n", t.Op(u).Name, t.Op(u).Kind)
	}

	// Execute the optimized pipeline live with the real operator
	// implementations and watch alerts arrive at the dashboard.
	// The live stream draws card ids from the same ZipF law the optimizer
	// was given, and the dedup horizon is short so its real novelty rate
	// matches the profiled 0.9 output selectivity.
	gen, err := operators.NewGenerator(operators.GeneratorConfig{
		Seed: 7, NumKeys: numCards, KeySkew: 1.4,
	})
	if err != nil {
		return err
	}
	binding := &spinstreams.Binding{Ops: map[spinstreams.OpID]operators.Operator{
		dedup:      operators.MustBuild(operators.Spec{Impl: "dedup", WindowLen: 2, NumKeys: numCards, Param: 0.9}),
		score:      operators.MustBuild(operators.Spec{Impl: "magnitude"}),
		riskFilter: operators.MustBuild(operators.Spec{Impl: "threshold-filter", Param: 0.5}),
		rolling:    operators.MustBuild(operators.Spec{Impl: "wma", WindowLen: 30, Slide: 10, NumKeys: numCards}),
		alerts:     operators.MustBuild(operators.Spec{Impl: "topk", WindowLen: 25, Slide: 5, K: 3}),
		dash:       operators.MustBuild(operators.Spec{Impl: "projection", K: 3}),
	}}
	var alertsSeen atomic.Uint64
	m, err := spinstreams.Execute(context.Background(), t, opt.Analysis.Replicas, binding, spinstreams.RunConfig{
		Duration:  3 * time.Second,
		Seed:      7,
		Generator: gen,
		OnSink: func(op spinstreams.OpID, tup spinstreams.Tuple) {
			alertsSeen.Add(1)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("live run: %.0f tx/s measured; dashboard received %d results\n",
		m.Throughput, alertsSeen.Load())
	fmt.Printf("  per-card-average departure: %.1f aggregates/s (1 per %d tx per card)\n",
		m.Departure[rolling], 10)
	return nil
}
