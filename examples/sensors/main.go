// Environmental monitoring: a multi-branch DAG with underutilized tail
// operators — the scenario where operator *fusion* pays off (Section 2 of
// the paper). The tool ranks fusion candidates, fuses the best subgraph,
// verifies that no bottleneck appears, and cross-checks the prediction in
// the simulator and on the live runtime (meta-operator actor, Algorithm 4).
//
//	go run ./examples/sensors
package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"spinstreams"
	"spinstreams/internal/operators"
	"spinstreams/internal/runtime"
)

const ms = 1e-3

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sensors:", err)
		os.Exit(1)
	}
}

func run() error {
	// Readings fan out to a cleaning branch and a calibration branch; the
	// calibration tail (normalize -> band-check -> spatial summary) is
	// fine-grained and mostly idle.
	t := spinstreams.NewTopology()
	src := t.MustAddOperator(spinstreams.Operator{
		Name: "sensors", Kind: spinstreams.KindSource, ServiceTime: 1.2 * ms, Impl: "source",
	})
	clean := t.MustAddOperator(spinstreams.Operator{
		Name: "clean", Kind: spinstreams.KindStateless, ServiceTime: 1.0 * ms, Impl: "range-filter",
		OutputSelectivity: 0.8,
	})
	calibrate := t.MustAddOperator(spinstreams.Operator{
		Name: "calibrate", Kind: spinstreams.KindStateless, ServiceTime: 0.6 * ms, Impl: "affine",
	})
	normalize := t.MustAddOperator(spinstreams.Operator{
		Name: "normalize", Kind: spinstreams.KindStateless, ServiceTime: 0.5 * ms, Impl: "normalize",
	})
	summary := t.MustAddOperator(spinstreams.Operator{
		Name: "skyline-summary", Kind: spinstreams.KindStateful, ServiceTime: 1.4 * ms, Impl: "skyline",
		InputSelectivity: 8,
	})
	archive := t.MustAddOperator(spinstreams.Operator{
		Name: "archive", Kind: spinstreams.KindSink, ServiceTime: 0.2 * ms, Impl: "projection",
	})
	t.MustConnect(src, clean, 0.6)
	t.MustConnect(src, calibrate, 0.4)
	t.MustConnect(clean, archive, 1)
	t.MustConnect(calibrate, normalize, 1)
	t.MustConnect(normalize, summary, 1)
	t.MustConnect(summary, archive, 1)

	a, err := spinstreams.Analyze(t)
	if err != nil {
		return err
	}
	fmt.Printf("initial design: %.0f readings/s predicted\n", a.Throughput())
	for i := 0; i < t.Len(); i++ {
		fmt.Printf("  %-18s utilization %.2f\n", t.Op(spinstreams.OpID(i)).Name, a.Rho[i])
	}

	// Ask the tool for fusion candidates (ranked, most underutilized
	// first) — the automation of the GUI's suggestion list.
	cands, err := spinstreams.Candidates(t)
	if err != nil {
		return err
	}
	if len(cands) == 0 {
		return fmt.Errorf("no feasible fusion candidate")
	}
	best := cands[0]
	names := make([]string, 0, len(best.Members))
	for _, m := range best.Members {
		names = append(names, t.Op(m).Name)
	}
	fmt.Printf("best fusion candidate: {%s} (fused utilization %.2f, T=%.2f ms)\n",
		strings.Join(names, ", "), best.FusedUtilization, best.ServiceTime/ms)

	fused, report, err := spinstreams.Fuse(t, best.Members, "calibration-unit")
	if err != nil {
		return err
	}
	if report.IntroducesBottleneck {
		fmt.Printf("ALERT: fusion would degrade throughput by %.0f%%\n", report.Degradation()*100)
		return nil
	}
	fmt.Printf("fusion accepted: %.0f -> %.0f readings/s predicted (%d -> %d operators)\n",
		report.ThroughputBefore, report.ThroughputAfter, t.Len(), fused.Len())

	// Cross-check in the simulator.
	sim, err := spinstreams.Simulate(fused, nil, spinstreams.SimConfig{Horizon: 30})
	if err != nil {
		return err
	}
	fmt.Printf("simulated fused topology: %.0f readings/s\n", sim.Throughput)

	// And live: the fused subgraph executes inside one meta-operator
	// actor applying the member functions along each item's path.
	protos := map[spinstreams.OpID]operators.Operator{
		calibrate: operators.MustBuild(operators.Spec{Impl: "affine", Param: 1.02}),
		normalize: operators.MustBuild(operators.Spec{Impl: "normalize"}),
		summary:   operators.MustBuild(operators.Spec{Impl: "skyline", WindowLen: 64, Slide: 8, K: 2}),
	}
	metaProtos := map[spinstreams.OpID]operators.Operator{}
	for _, m := range report.Members {
		if p, ok := protos[m]; ok {
			metaProtos[m] = p
		} else {
			metaProtos[m] = operators.MustBuild(operators.Spec{Impl: "identity"})
		}
	}
	meta, err := runtime.NewMetaOperator(t, report, metaProtos, 3)
	if err != nil {
		return err
	}
	binding := &spinstreams.Binding{
		Ops: map[spinstreams.OpID]operators.Operator{
			report.SurvivorIDs[clean]: operators.MustBuild(operators.Spec{Impl: "range-filter", Param: 0.8}),
		},
		Meta: map[spinstreams.OpID]*runtime.MetaOperator{report.FusedID: meta},
	}
	m, err := spinstreams.Execute(context.Background(), fused, nil, binding, spinstreams.RunConfig{
		Duration: 3 * time.Second,
		Seed:     11,
	})
	if err != nil {
		return err
	}
	fmt.Printf("live fused topology: %.0f readings/s measured\n", m.Throughput)
	return nil
}
