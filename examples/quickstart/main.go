// Quickstart: build a small pipeline, predict its throughput under
// backpressure, let the optimizer remove the bottleneck, and confirm the
// prediction by simulating and by executing the topology live.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"spinstreams"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A four-stage pipeline: the enrichment stage is 4x slower than the
	// source and will throttle everything through backpressure.
	t := spinstreams.NewTopology()
	src := t.MustAddOperator(spinstreams.Operator{
		Name: "events", Kind: spinstreams.KindSource, ServiceTime: 1 * ms, Impl: "source",
	})
	parse := t.MustAddOperator(spinstreams.Operator{
		Name: "parse", Kind: spinstreams.KindStateless, ServiceTime: 0.3 * ms, Impl: "affine",
	})
	enrich := t.MustAddOperator(spinstreams.Operator{
		Name: "enrich", Kind: spinstreams.KindStateless, ServiceTime: 4 * ms, Impl: "magnitude",
	})
	store := t.MustAddOperator(spinstreams.Operator{
		Name: "store", Kind: spinstreams.KindSink, ServiceTime: 0.2 * ms, Impl: "projection",
	})
	t.MustConnect(src, parse, 1)
	t.MustConnect(parse, enrich, 1)
	t.MustConnect(enrich, store, 1)

	// Step 1 — steady-state analysis (Algorithm 1).
	a, err := spinstreams.Analyze(t)
	if err != nil {
		return err
	}
	fmt.Printf("initial design: predicted throughput %.0f events/s\n", a.Throughput())
	for _, id := range a.Limiting {
		fmt.Printf("  bottleneck: %s (saturated; backpressure throttles the source)\n", t.Op(id).Name)
	}

	// Step 2 — bottleneck elimination via fission (Algorithm 2).
	opt, err := spinstreams.Optimize(t, spinstreams.FissionOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("after fission: predicted throughput %.0f events/s (enrich x%d replicas)\n",
		opt.Analysis.Throughput(), opt.Analysis.Replicas[enrich])

	// Step 3 — check the prediction in the discrete-event simulator.
	sim, err := spinstreams.Simulate(t, opt.Analysis.Replicas, spinstreams.SimConfig{Horizon: 30})
	if err != nil {
		return err
	}
	fmt.Printf("simulated: %.0f events/s\n", sim.Throughput)

	// Step 4 — execute live on the goroutine runtime (actors with bounded
	// mailboxes; replicated operators run behind emitter/collector actors).
	m, err := spinstreams.Execute(context.Background(), t, opt.Analysis.Replicas, nil, spinstreams.RunConfig{
		Duration: 3 * time.Second,
	})
	if err != nil {
		return err
	}
	fmt.Printf("executed live: %.0f events/s\n", m.Throughput)
	return nil
}

const ms = 1e-3
