// Distributed execution: the same optimized pipeline runs first on a
// single process, then partitioned across three TCP-connected nodes — the
// Akka-Remoting direction the paper names as future work. Backpressure
// propagates across the network (a saturated remote mailbox stalls the
// TCP stream, which stalls the upstream sender), so the cost model's
// predictions hold in both deployments.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"spinstreams"
)

const ms = 1e-3

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distributed:", err)
		os.Exit(1)
	}
}

func run() error {
	t := spinstreams.NewTopology()
	src := t.MustAddOperator(spinstreams.Operator{
		Name: "ingest", Kind: spinstreams.KindSource, ServiceTime: 2 * ms, Impl: "source",
	})
	parse := t.MustAddOperator(spinstreams.Operator{
		Name: "parse", Kind: spinstreams.KindStateless, ServiceTime: 1 * ms, Impl: "affine",
	})
	enrich := t.MustAddOperator(spinstreams.Operator{
		Name: "enrich", Kind: spinstreams.KindStateless, ServiceTime: 6 * ms, Impl: "magnitude",
	})
	store := t.MustAddOperator(spinstreams.Operator{
		Name: "store", Kind: spinstreams.KindSink, ServiceTime: 0.5 * ms, Impl: "projection",
	})
	t.MustConnect(src, parse, 1)
	t.MustConnect(parse, enrich, 1)
	t.MustConnect(enrich, store, 1)

	opt, err := spinstreams.Optimize(t, spinstreams.FissionOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("predicted: %.0f items/s (enrich x%d replicas)\n",
		opt.Analysis.Throughput(), opt.Analysis.Replicas[enrich])

	ctx := context.Background()
	local, err := spinstreams.Execute(ctx, t, opt.Analysis.Replicas, nil, spinstreams.RunConfig{
		Duration: 3 * time.Second, Seed: 5,
	})
	if err != nil {
		return err
	}
	fmt.Printf("single process:       %.0f items/s measured\n", local.Throughput)

	distCfg := spinstreams.DistributedConfig{Nodes: 3}
	distCfg.Duration = 3 * time.Second
	distCfg.Seed = 5
	dist, err := spinstreams.ExecuteDistributed(ctx, t, opt.Analysis.Replicas, nil, distCfg)
	if err != nil {
		return err
	}
	fmt.Printf("3 nodes over TCP:     %.0f items/s measured\n", dist.Throughput)
	fmt.Println("stations per node exchange items over loopback TCP; emitter,")
	fmt.Println("replicas and collector of each operator stay co-located.")
	return nil
}
