// The exact operator-fusion walk-through of Section 5.4 of the paper:
// the six-operator topology of Figure 11 in both service-time variants.
// Table 1 (fast operators 3/4/5) — fusion is feasible; Table 2 (slow
// operators) — the tool raises an alert because the meta-operator becomes
// a bottleneck. Predictions are verified in the simulator.
//
//	go run ./examples/fusionpaper
package main

import (
	"fmt"
	"os"

	"spinstreams/internal/core"
	"spinstreams/internal/experiments"
	"spinstreams/internal/qsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fusionpaper:", err)
		os.Exit(1)
	}
}

func run() error {
	setup := experiments.Setup{Seed: 1, Sim: qsim.Config{Horizon: 40}}
	for _, variant := range []core.PaperExampleVariant{core.PaperExampleTable1, core.PaperExampleTable2} {
		res, err := experiments.Table(setup, variant)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	fmt.Println("paper reference: Table 1 fused T = 2.80 ms, throughput 1000 predicted / 970 measured;")
	fmt.Println("                 Table 2 fused T = 4.42 ms, throughput 760 predicted / 753 measured.")
	return nil
}
