package spinstreams_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spinstreams"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	topo := spinstreams.NewTopology()
	src := topo.MustAddOperator(spinstreams.Operator{Name: "src", Kind: spinstreams.KindSource, ServiceTime: 1e-3})
	hot := topo.MustAddOperator(spinstreams.Operator{Name: "hot", Kind: spinstreams.KindStateless, ServiceTime: 4e-3})
	sink := topo.MustAddOperator(spinstreams.Operator{Name: "sink", Kind: spinstreams.KindSink, ServiceTime: 1e-4})
	topo.MustConnect(src, hot, 1)
	topo.MustConnect(hot, sink, 1)

	a, err := spinstreams.Analyze(topo)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput() < 249 || a.Throughput() > 251 {
		t.Fatalf("predicted throughput = %v, want 250", a.Throughput())
	}
	res, err := spinstreams.Optimize(topo, spinstreams.FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Analysis.Replicas[hot] != 4 {
		t.Fatalf("replicas = %d, want 4", res.Analysis.Replicas[hot])
	}
	sim, err := spinstreams.Simulate(topo, res.Analysis.Replicas, spinstreams.SimConfig{Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Throughput < 900 {
		t.Fatalf("simulated throughput = %v, want ~1000", sim.Throughput)
	}
}

func TestFacadePaperExampleAndFusion(t *testing.T) {
	topo, sub := spinstreams.PaperExample(false)
	cands, err := spinstreams.Candidates(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	fused, report, err := spinstreams.Fuse(topo, sub, "F")
	if err != nil {
		t.Fatal(err)
	}
	if report.IntroducesBottleneck {
		t.Fatal("table 1 fusion flagged")
	}
	var buf bytes.Buffer
	if err := spinstreams.WriteTopology(&buf, "fused", fused); err != nil {
		t.Fatal(err)
	}
	back, err := spinstreams.ReadTopology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != fused.Len() {
		t.Fatal("xml round trip changed topology")
	}
}

func TestFacadeExecute(t *testing.T) {
	topo := spinstreams.NewTopology()
	src := topo.MustAddOperator(spinstreams.Operator{Name: "src", Kind: spinstreams.KindSource, ServiceTime: 1e-3})
	sink := topo.MustAddOperator(spinstreams.Operator{Name: "sink", Kind: spinstreams.KindSink, ServiceTime: 1e-4})
	topo.MustConnect(src, sink, 1)
	m, err := spinstreams.Execute(context.Background(), topo, nil, nil, spinstreams.RunConfig{
		Duration: 800 * time.Millisecond,
		Warmup:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput < 700 || m.Throughput > 1300 {
		t.Fatalf("throughput = %v, want ~1000", m.Throughput)
	}
}

// TestFacadeExecuteWithFaults drives the fault-injection and graceful-
// degradation surface through the public facade: injected panics with
// unlimited restarts must leave the run alive and the tuple accounting
// exactly conserved.
func TestFacadeExecuteWithFaults(t *testing.T) {
	topo := spinstreams.NewTopology()
	src := topo.MustAddOperator(spinstreams.Operator{Name: "src", Kind: spinstreams.KindSource, ServiceTime: 1e-3})
	mid := topo.MustAddOperator(spinstreams.Operator{Name: "mid", Kind: spinstreams.KindStateless, ServiceTime: 2e-4})
	sink := topo.MustAddOperator(spinstreams.Operator{Name: "sink", Kind: spinstreams.KindSink, ServiceTime: 1e-4})
	topo.MustConnect(src, mid, 1)
	topo.MustConnect(mid, sink, 1)
	inj := spinstreams.NewFaultInjector(spinstreams.FaultInjectorConfig{
		Seed:      5,
		PanicProb: 0.01,
	})
	m, err := spinstreams.Execute(context.Background(), topo, nil, nil, spinstreams.RunConfig{
		Duration:    800 * time.Millisecond,
		Warmup:      200 * time.Millisecond,
		MaxRestarts: -1,
		Faults:      inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	tt := m.Totals
	if out := tt.Delivered + tt.Shed + tt.Failed + tt.Drained + tt.Abandoned; tt.Generated != out {
		t.Fatalf("conservation violated: generated %d, accounted %d (%+v)", tt.Generated, out, tt)
	}
	if c := inj.Counts(); c.Panics == 0 {
		t.Fatal("fault schedule injected no panics")
	} else if m.Restarts == 0 {
		t.Fatalf("%d panics but no restarts", c.Panics)
	}
	if tt.Delivered == 0 {
		t.Fatal("nothing delivered despite unlimited restarts")
	}
}

func TestFacadeOperatorCatalog(t *testing.T) {
	names := spinstreams.OperatorCatalog()
	if len(names) != 20 {
		t.Fatalf("catalog = %d entries, want 20", len(names))
	}
	op, err := spinstreams.BuildOperator(spinstreams.Spec{Impl: names[0]})
	if err != nil || op == nil {
		t.Fatalf("BuildOperator: %v", err)
	}
}

func TestFacadeExtensions(t *testing.T) {
	// Cyclic analysis through the facade.
	cyc := spinstreams.NewTopology()
	src := cyc.MustAddOperator(spinstreams.Operator{Name: "src", Kind: spinstreams.KindSource, ServiceTime: 1e-3})
	work := cyc.MustAddOperator(spinstreams.Operator{Name: "work", Kind: spinstreams.KindStateful, ServiceTime: 5e-4})
	retry := cyc.MustAddOperator(spinstreams.Operator{Name: "retry", Kind: spinstreams.KindStateful, ServiceTime: 1e-4})
	sink := cyc.MustAddOperator(spinstreams.Operator{Name: "sink", Kind: spinstreams.KindSink, ServiceTime: 1e-4})
	cyc.MustConnect(src, work, 1)
	cyc.MustConnect(work, sink, 0.8)
	cyc.MustConnect(work, retry, 0.2)
	cyc.MustConnect(retry, work, 1)
	a, err := spinstreams.AnalyzeCyclic(cyc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput() < 999 {
		t.Errorf("cyclic throughput = %v", a.Throughput())
	}

	// Shedding analysis.
	topo, _ := spinstreams.PaperExample(true)
	shed, err := spinstreams.AnalyzeShedding(topo)
	if err != nil {
		t.Fatal(err)
	}
	if shed.SourceRate <= 0 {
		t.Error("shedding analysis empty")
	}

	// Latency estimate.
	est, err := spinstreams.EstimateLatency(topo, nil, spinstreams.MM1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if est.EndToEnd <= 0 {
		t.Error("latency estimate empty")
	}

	// AutoFuse.
	fuseTopo, _ := spinstreams.PaperExample(false)
	auto, err := spinstreams.AutoFuse(fuseTopo, spinstreams.AutoFuseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if auto.OperatorsAfter >= auto.OperatorsBefore {
		t.Error("autofuse did not coarsen the paper topology")
	}
}

func TestFacadeDistributedAndFiles(t *testing.T) {
	topo := spinstreams.NewTopology()
	src := topo.MustAddOperator(spinstreams.Operator{Name: "src", Kind: spinstreams.KindSource, ServiceTime: 2e-3})
	sink := topo.MustAddOperator(spinstreams.Operator{Name: "sink", Kind: spinstreams.KindSink, ServiceTime: 1e-4})
	topo.MustConnect(src, sink, 1)

	cfg := spinstreams.DistributedConfig{Nodes: 2}
	cfg.Duration = 900 * time.Millisecond
	cfg.Warmup = 300 * time.Millisecond
	m, err := spinstreams.ExecuteDistributed(context.Background(), topo, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput < 300 || m.Throughput > 700 {
		t.Errorf("distributed throughput = %v, want ~500", m.Throughput)
	}

	path := filepath.Join(t.TempDir(), "t.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := spinstreams.WriteTopology(f, "t", topo); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := spinstreams.ReadTopologyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Errorf("file round trip lost operators")
	}
}

// TestFacadeOptimizerPipeline covers the pass-pipeline facade: one call
// runs analysis, fission and fusion with a rewrite trace, and Reoptimize
// turns a drift report from a live run into a delta plan.
func TestFacadeOptimizerPipeline(t *testing.T) {
	topo, _ := spinstreams.PaperExample(false)
	res, err := spinstreams.OptimizePipeline(topo, spinstreams.OptimizerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Topology().Len() >= topo.Len() {
		t.Error("pipeline did not fuse the paper example")
	}
	if res.Trace == nil || len(res.Trace.Passes) == 0 {
		t.Error("pipeline produced no rewrite trace")
	}
	if _, err := res.Trace.JSON(); err != nil {
		t.Errorf("trace JSON: %v", err)
	}

	reg := spinstreams.NewObsRegistry()
	if _, err := spinstreams.Execute(context.Background(), topo, nil, nil, spinstreams.RunConfig{
		Duration: 500 * time.Millisecond, Warmup: 125 * time.Millisecond, MailboxSize: 8, Obs: reg,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := spinstreams.ComputeDrift(topo, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := spinstreams.Reoptimize(topo, rep, spinstreams.OptimizerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if delta.String() == "" {
		t.Error("delta plan renders empty")
	}
}
