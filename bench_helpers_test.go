package spinstreams_test

import (
	"bytes"
	"testing"

	"spinstreams/internal/randtopo"
	"spinstreams/internal/xmlio"
)

// roundTripXML serializes and re-parses a generated topology.
func roundTripXML(b *testing.B, g *randtopo.Generated) {
	b.Helper()
	var buf bytes.Buffer
	if err := xmlio.Write(&buf, "bench", g.Topology); err != nil {
		b.Fatal(err)
	}
	if _, err := xmlio.Read(&buf); err != nil {
		b.Fatal(err)
	}
}
